#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without the BTB2.

Builds the paper's highest-gain trace (a synthetic calibrated to Z/OS
DayTrader DBServ, Table 4), runs the Table 3 baseline and BTB2-enabled
configurations, and prints the CPI improvement plus the bad-branch-outcome
breakdown — a miniature of the paper's Figures 2 and 4.

Run with a larger ``--scale`` for numbers closer to EXPERIMENTS.md::

    python examples/quickstart.py --scale 0.5
"""

import argparse

from repro import Simulator, ZEC12_CONFIG_1, ZEC12_CONFIG_2, cpi_improvement
from repro.metrics.report import format_comparison, format_result
from repro.workloads import DAYTRADER_DBSERV


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.35,
                        help="trace length scale (1.0 = full, default 0.35)")
    args = parser.parse_args()

    print(f"generating {DAYTRADER_DBSERV.name} trace (scale {args.scale}) ...")
    trace = DAYTRADER_DBSERV.trace(scale=args.scale)
    print(f"{len(trace):,} records\n")

    print("simulating configuration 1 (no BTB2) ...")
    baseline = Simulator(ZEC12_CONFIG_1).run(trace)
    print("simulating configuration 2 (24k BTB2) ...\n")
    with_btb2 = Simulator(ZEC12_CONFIG_2).run(trace)

    print(format_result(baseline, title="--- 1. No BTB2 ---"))
    print()
    print(format_result(with_btb2, title="--- 2. BTB2 enabled ---"))
    print()
    print(format_comparison(baseline, with_btb2))
    gain = cpi_improvement(baseline.cpi, with_btb2.cpi)
    print(f"\nThe 24k-entry second level recovers {gain:.2f}% CPI on this "
          "capacity-bound workload.")


if __name__ == "__main__":
    main()
