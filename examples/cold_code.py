#!/usr/bin/env python3
"""Cold-code walkthrough: one bulk preload, cycle by cycle.

Replays the paper's section 3 narrative on a microscopic scene: a 4 KB
block full of branches is executed once (every branch a surprise), evicted
from the first level by other code, then re-entered.  The script traces
what the machinery does on the revisit:

1. the lookahead searcher finds nothing for 4 searches -> perceived miss;
2. the miss correlates with an I-cache miss in the block -> fully active
   tracker;
3. the transfer engine bulk-moves the block's BTB2 content into the BTBP
   (7-cycle start + 8-cycle pipeline + 1 row/cycle);
4. later branches in the block are predicted from the BTBP instead of
   surprising — and get promoted into the BTB1 as they predict.
"""

from repro import Simulator, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

HOT = 0x1000_0000       # a tight region that stays resident
COLD = 0x2000_0000      # the cold 4 KB block under study


def chain(base, hops, hop_bytes=0x40, exit_target=None):
    """A chain of taken unconditional branches through a block."""
    records = []
    for hop in range(hops):
        start = base + hop * hop_bytes
        for i in range(4):
            records.append(TraceRecord(address=start + i * 4, length=4))
        target = (base + (hop + 1) * hop_bytes if hop < hops - 1
                  else exit_target)
        records.append(TraceRecord(address=start + 16, length=4,
                                   kind=BranchKind.UNCOND, taken=True,
                                   target=target))
    return records


def evicting_filler(rounds):
    """Enough distinct branch sites to churn the cold block's entries out."""
    records = []
    sites = [HOT + i * 0x1040 for i in range(64)]
    for _ in range(rounds):
        for index, site in enumerate(sites):
            exit_target = sites[(index + 1) % len(sites)]
            records.extend(chain(site, hops=1, exit_target=exit_target))
    return records


def main() -> None:
    # Act 1: first visit to the cold block (all compulsory surprises).
    trace = chain(COLD, hops=16, exit_target=HOT)
    # Act 2: enough other code to evict the block from BTB1/BTBP (its
    # entries survive in the 24k BTB2) and from the 64 KB L1I.
    filler = evicting_filler(rounds=40)
    filler[-1] = TraceRecord(address=filler[-1].address, length=4,
                             kind=BranchKind.UNCOND, taken=True, target=COLD)
    trace += filler
    # Act 3: the revisit.
    trace += chain(COLD, hops=16, exit_target=HOT + 0x500)
    trace.append(TraceRecord(address=HOT + 0x500, length=4))

    simulator = Simulator(ZEC12_CONFIG_2)
    revisit_start = len(trace) - 16 * 5 - 1

    outcomes = []
    for index, record in enumerate(trace):
        before = dict(simulator.counters.outcomes)
        simulator.step(record)
        if index >= revisit_start and record.is_branch:
            after = simulator.counters.outcomes
            (kind,) = [k for k in after if after[k] != before.get(k, 0)]
            outcomes.append((record.address, kind))
    result = simulator.finish()

    print("revisit of the cold 4 KB block, branch by branch:")
    preloaded = 0
    for address, kind in outcomes:
        marker = "  <- preloaded" if kind is OutcomeKind.GOOD_DYNAMIC else ""
        if kind is OutcomeKind.GOOD_DYNAMIC:
            preloaded += 1
        print(f"  branch {address:#x}: {kind.value}{marker}")

    stats = result.preload_stats
    print(f"\nbulk preload activity: {stats['full_searches']} full + "
          f"{stats['partial_searches']} partial searches, "
          f"{stats['entries_transferred']} entries transferred")
    print(f"{preloaded}/16 revisited branches were served by the bulk "
          "preload instead of surprising.")


if __name__ == "__main__":
    main()
