#!/usr/bin/env python3
"""Capacity study: where does a second-level BTB start paying off?

The paper's central claim is that large commercial workloads are limited by
branch-predictor *capacity*, not predictor accuracy.  This example sweeps a
family of synthetic workloads whose unique-branch population grows from
"fits in the BTB1" to "several times the BTB1", and reports:

* the baseline bad-outcome fraction split into mispredicts vs capacity
  surprises (capacity takes over as the footprint grows);
* the CPI benefit of enabling the 24k BTB2 (the crossover where the second
  level starts to matter).
"""

from repro import Simulator, ZEC12_CONFIG_1, ZEC12_CONFIG_2, cpi_improvement
from repro.core.events import OutcomeKind
from repro.workloads import ProgramShape, WalkProfile, build_program, generate_trace


def make_workload(functions: int, seed: int = 11):
    """A transaction workload over a pool of ``functions`` functions."""
    shape = ProgramShape(
        functions=functions,
        blocks_per_function=(3, 7),
        instructions_per_block=(2, 5),
        call_fraction=0.14,
        loop_fraction=0.15,
        loop_trips=(2, 6),
        indirect_fraction=0.02,
        forward_taken_bias=0.35,
        seed=seed,
    )
    profile = WalkProfile(uniform_fraction=0.55, burst_mean=2.0,
                          max_call_depth=4, max_loop_iterations=12,
                          seed=seed * 7)
    length = max(150_000, functions * 400)
    return generate_trace(build_program(shape), length, profile)


def main() -> None:
    print(f"{'functions':>9s} {'uniq taken':>10s} {'mispred %':>9s} "
          f"{'capacity %':>10s} {'BTB2 gain %':>11s}")
    for functions in (200, 500, 1000, 2000, 4000):
        trace = make_workload(functions)
        baseline = Simulator(ZEC12_CONFIG_1).run(trace)
        with_btb2 = Simulator(ZEC12_CONFIG_2).run(trace)
        counters = baseline.counters
        unique_taken = len({
            r.address for r in trace if r.is_branch and r.taken
        })
        print(
            f"{functions:9d} {unique_taken:10,d} "
            f"{100 * counters.mispredict_outcomes / counters.branches:9.2f} "
            f"{100 * counters.outcome_fraction(OutcomeKind.SURPRISE_CAPACITY):10.2f} "
            f"{cpi_improvement(baseline.cpi, with_btb2.cpi):11.2f}"
        )
    print(
        "\nReading: once the ever-taken population clears the ~4.8k-entry\n"
        "first level (BTB1+BTBP), capacity surprises — not mispredicts —\n"
        "dominate the bad outcomes, and the BTB2's benefit switches on.\n"
        "That is the paper's Figure 2/4 story in one table."
    )


if __name__ == "__main__":
    main()
