#!/usr/bin/env python3
"""Software branch preload: the BTBP's fourth write source.

Section 3.1 lists "branch preload instructions" among the BTBP's write
sources: software can tell the predictor about branches before they
execute.  This example runs the same cold code twice — once cold, once
after issuing software preloads for its branches — and compares the
surprise counts, a miniature of what a JIT or profile-guided runtime could
do on this hardware.
"""

from repro import Simulator, ZEC12_CONFIG_1
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

COLD = 0x5000_0000


def cold_chain(hops=12, hop_bytes=0x40):
    """A chain of taken branches through never-before-seen code."""
    records = []
    for hop in range(hops):
        start = COLD + hop * hop_bytes
        for i in range(4):
            records.append(TraceRecord(address=start + i * 4, length=4))
        if hop < hops - 1:
            records.append(TraceRecord(
                address=start + 16, length=4, kind=BranchKind.UNCOND,
                taken=True, target=COLD + (hop + 1) * hop_bytes,
            ))
    return records


def run(preload: bool):
    simulator = Simulator(ZEC12_CONFIG_1)
    if preload:
        for hop in range(11):
            simulator.hierarchy.software_preload(
                address=COLD + hop * 0x40 + 16,
                target=COLD + (hop + 1) * 0x40,
                kind=BranchKind.UNCOND,
            )
    return simulator.run(cold_chain())


def main() -> None:
    cold = run(preload=False)
    warm = run(preload=True)
    print(f"{'':24s} {'surprises':>9s} {'dynamic':>8s} {'CPI':>7s}")
    for label, result in (("cold (no preload)", cold),
                          ("software preloaded", warm)):
        counters = result.counters
        print(f"{label:24s} {counters.surprise_outcomes:9d} "
              f"{counters.outcomes[list(counters.outcomes)[0]]:8d} "
              f"{result.cpi:7.3f}")
    saved = (cold.cpi - warm.cpi) / cold.cpi * 100
    print(f"\npreload instructions removed every compulsory surprise "
          f"({saved:.1f}% CPI on this fragment).")


if __name__ == "__main__":
    main()
