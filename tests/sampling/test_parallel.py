"""Checkpoint-parallel simulation: bit-identity, stitching, fallbacks."""

import math

import pytest

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.simulator import Simulator, simulate
from repro.sampling import (
    CheckpointStore,
    ParallelPlan,
    SamplingPlan,
    TraceSource,
    plan_slices,
    run_parallel,
    run_sampled,
)
from repro.sampling.parallel import stitch_deltas
from repro.workloads.catalog import workload_by_name

SMALL_PLAN = SamplingPlan(interval=400, period=8000, warmup=400)


def _source(name: str, scale: float) -> TraceSource:
    return TraceSource.for_workload(workload_by_name(name), scale)


# -- slice planner ---------------------------------------------------------


def test_plan_slices_partitions_exactly():
    slices = plan_slices(10_007, 4)
    assert [s.index for s in slices] == [0, 1, 2, 3]
    assert slices[0].start == 0
    assert slices[-1].stop == 10_007
    # Contiguous, non-overlapping, near-equal.
    for left, right in zip(slices, slices[1:]):
        assert left.stop == right.start
    lengths = [s.stop - s.start for s in slices]
    assert max(lengths) - min(lengths) <= 1


def test_plan_slices_never_produces_empty_slices():
    assert plan_slices(0, 4) == []
    assert len(plan_slices(3, 8)) == 3
    for s in plan_slices(3, 8):
        assert s.stop > s.start


def test_parallel_plan_validates():
    with pytest.raises(ValueError):
        ParallelPlan(intervals=0)
    assert ParallelPlan(3).cache_key() == ("parallel", 3)


# -- exact mode: the bit-identity contract ---------------------------------


@pytest.mark.parametrize("backend", ["serial", "process"])
@pytest.mark.parametrize("workload", ["TPF", "Informix"])
def test_exact_parallel_is_bit_identical_to_serial(workload, backend):
    """The acceptance pin: same counters, same CPI, any backend."""
    spec = workload_by_name(workload)
    serial = simulate(spec.trace(0.05), config=ZEC12_CONFIG_2)
    stitched = run_parallel(_source(workload, 0.05), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(4), backend=backend)
    assert stitched.exact
    assert stitched.warm_fallbacks == 0
    assert stitched.result.counters.state_dict() == \
        serial.counters.state_dict()
    assert stitched.result.cpi == serial.cpi
    assert stitched.cpi == serial.cpi


def test_exact_single_slice_degenerates_to_serial():
    spec = workload_by_name("TPF")
    serial = simulate(spec.trace(0.05), config=ZEC12_CONFIG_2)
    stitched = run_parallel(_source("TPF", 0.05), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(1), backend="serial")
    assert len(stitched.outcomes) == 1
    assert stitched.produced_records == 0  # no interior boundaries
    assert stitched.result.counters.state_dict() == \
        serial.counters.state_dict()


def test_exact_deltas_telescope_to_final_counters():
    """Integer per-slice deltas sum to the serial totals; cycles to float."""
    spec = workload_by_name("TPF")
    serial = simulate(spec.trace(0.05), config=ZEC12_CONFIG_2)
    stitched = run_parallel(_source("TPF", 0.05), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(4), backend="serial")
    merged = stitch_deltas(stitched.outcomes)
    final = serial.counters.state_dict()
    for key, value in final.items():
        if key == "cycles":
            assert merged[key] == pytest.approx(value, rel=1e-9)
        elif isinstance(value, dict):
            for name, amount in value.items():
                assert merged[key].get(name, 0) == pytest.approx(
                    amount, rel=1e-9)
        else:
            assert merged[key] == value, key


def test_exact_checkpoint_store_round_trip(tmp_path):
    """Cold run saves boundary states; warm rerun produces zero records."""
    store = CheckpointStore(tmp_path)
    source = _source("TPF", 0.05)
    cold = run_parallel(source, config=ZEC12_CONFIG_2, plan=ParallelPlan(4),
                        backend="serial", checkpoint_store=store)
    assert cold.checkpoints_saved == 3  # K-1 interior boundaries
    assert cold.produced_records > 0
    warm = run_parallel(source, config=ZEC12_CONFIG_2, plan=ParallelPlan(4),
                        backend="serial", checkpoint_store=store)
    assert warm.produced_records == 0
    assert warm.checkpoints_saved == 0
    assert warm.checkpoints_loaded >= 3
    assert warm.result.counters.state_dict() == \
        cold.result.counters.state_dict()
    # Boundary states are keyed by record, not K: K=2 reuses the K=4 state
    # at the shared midpoint boundary instead of re-producing all of it.
    half = run_parallel(source, config=ZEC12_CONFIG_2, plan=ParallelPlan(2),
                        backend="serial", checkpoint_store=store)
    assert half.result.counters.state_dict() == \
        cold.result.counters.state_dict()
    assert half.produced_records == 0  # midpoint was a K=4 boundary


def test_exact_mode_differs_across_configs():
    """Sanity: the stitched result tracks the config, not the plan."""
    one = run_parallel(_source("TPF", 0.05), config=ZEC12_CONFIG_1,
                       plan=ParallelPlan(3), backend="serial")
    two = run_parallel(_source("TPF", 0.05), config=ZEC12_CONFIG_2,
                       plan=ParallelPlan(3), backend="serial")
    assert one.cpi != two.cpi


def test_corrupt_checkpoint_degrades_to_functional_warming(tmp_path):
    """A worker that cannot load its state falls back and reports it."""
    store = CheckpointStore(tmp_path)
    source = _source("TPF", 0.05)
    run_parallel(source, config=ZEC12_CONFIG_2, plan=ParallelPlan(4),
                 backend="serial", checkpoint_store=store)
    # Poison every stored boundary state with a stale schema version.
    from repro.sampling import load_state, save_state

    for path in store.entries():
        state = load_state(path)
        state["version"] = 99_999
        save_state(path, state)
    # No store this time would re-produce; with the poisoned store the
    # producer recomputes (load fails -> steps) and re-saves good states.
    redo = run_parallel(source, config=ZEC12_CONFIG_2, plan=ParallelPlan(4),
                        backend="serial", checkpoint_store=store)
    serial = simulate(workload_by_name("TPF").trace(0.05),
                      config=ZEC12_CONFIG_2)
    assert redo.result.counters.state_dict() == serial.counters.state_dict()
    assert redo.produced_records > 0  # poisoned states forced a re-produce


def test_empty_trace_is_rejected():
    with pytest.raises(ValueError, match="empty trace"):
        run_parallel(TraceSource.for_records([]), config=ZEC12_CONFIG_2,
                     plan=ParallelPlan(2), backend="serial")


# -- sampled mode: CI-bounded stitching ------------------------------------


def test_sampled_parallel_chunks_cover_the_plan():
    spec = workload_by_name("TPF")
    trace = spec.trace(0.1)
    expected = SMALL_PLAN.intervals(len(trace))
    stitched = run_parallel(_source("TPF", 0.1), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(3), sampling=SMALL_PLAN,
                            backend="serial")
    assert stitched.mode == "sampled"
    assert stitched.sampled is not None
    measured = stitched.sampled.measurements
    assert [m.index for m in measured] == [i.index for i in expected]
    assert [(m.start, m.stop) for m in measured] == \
        [(i.start, i.stop) for i in expected]
    # Whole-trace extrapolation is anchored on the true record count.
    assert stitched.result.counters.instructions == len(trace)


def test_sampled_parallel_tracks_serial_sampled_estimates():
    """Same plan, chunked across workers: estimates agree within the CIs."""
    spec = workload_by_name("TPF")
    trace = spec.trace(0.1)
    serial = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    stitched = run_parallel(_source("TPF", 0.1), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(3), sampling=SMALL_PLAN,
                            backend="serial")
    assert math.isfinite(stitched.cpi)
    spread = serial.cpi_ci + stitched.cpi_ci
    assert abs(stitched.cpi - serial.cpi) <= max(spread, 0.05 * serial.cpi)
    assert abs(stitched.bad_outcome_fraction - serial.bad_outcome_fraction) \
        <= max(serial.bad_outcome_ci + stitched.bad_outcome_ci, 0.05)


def test_sampled_parallel_checkpoints_do_not_cross_lineages(tmp_path):
    """Sampled-parallel chunk states must never poison the serial sampled
    runner's checkpoint lineage (or vice versa): distinct plan keys."""
    store = CheckpointStore(tmp_path)
    trace = workload_by_name("TPF").trace(0.1)
    serial = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                         checkpoint_store=store, trace_key="tpf-x")
    assert serial.checkpoints_saved == len(serial.measurements)
    before = len(store.entries())
    stitched = run_parallel(_source("TPF", 0.1), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(3), sampling=SMALL_PLAN,
                            backend="serial", checkpoint_store=store,
                            trace_key="tpf-x")
    # The parallel run saved its own states — none shared with serial's.
    assert stitched.checkpoints_loaded == 0
    assert len(store.entries()) > before
    # And the serial lineage still replays untouched.
    warm = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                       checkpoint_store=store, trace_key="tpf-x")
    assert warm.checkpoints_loaded == len(warm.measurements)
    assert warm.cpi == serial.cpi


# -- orchestrator telemetry -------------------------------------------------


def test_parallel_telemetry_emits_produce_and_end_events():
    from repro.telemetry import Telemetry, Tracer

    telemetry = Telemetry(tracer=Tracer())
    stitched = run_parallel(_source("TPF", 0.05), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(4), backend="serial",
                            telemetry=telemetry)
    events = [e for e in telemetry.tracer.events if e["kind"] == "interval"]
    phases = {event["phase"] for event in events}
    assert phases == {"produce", "end"}
    produces = [e for e in events if e["phase"] == "produce"]
    assert len(produces) == 3  # one per interior boundary
    assert [e["record"] for e in produces] == \
        [s.start for s in stitched.outcomes[1:]]
    ends = [e for e in events if e["phase"] == "end"]
    assert len(ends) == len(stitched.outcomes)


# -- trace sources ----------------------------------------------------------


def test_trace_source_for_records_round_trips():
    records = workload_by_name("TPF").trace(0.05)
    source = TraceSource.for_records(records)
    assert list(source.open()) == list(records)
    serial = simulate(records, config=ZEC12_CONFIG_2)
    stitched = run_parallel(source, config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(2), backend="serial")
    assert stitched.result.counters.state_dict() == \
        serial.counters.state_dict()


def test_trace_source_identities_are_stable_and_distinct():
    a = TraceSource.for_workload(workload_by_name("TPF"), 0.05)
    b = TraceSource.for_workload(workload_by_name("TPF"), 0.05)
    c = TraceSource.for_workload(workload_by_name("Informix"), 0.05)
    assert a.identity() == b.identity()
    assert a.identity() != c.identity()


def test_trace_source_streams_from_disk(tmp_path):
    """A path source streams via TraceFile and still stitches exactly."""
    from repro.trace.writer import write_trace

    records = workload_by_name("TPF").trace(0.05)
    path = tmp_path / "tpf.trace"
    with open(path, "wb") as stream:
        write_trace(stream, records)
    serial = simulate(records, config=ZEC12_CONFIG_2)
    stitched = run_parallel(TraceSource.for_path(path),
                            config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(4), backend="serial")
    assert stitched.result.counters.state_dict() == \
        serial.counters.state_dict()
