"""Checkpoint serialization: round trips, byte stability, tolerant loads."""

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.sampling import CheckpointStore, load_state, save_state
from repro.workloads.catalog import workload_by_name


def _warmed_state():
    trace = workload_by_name("Informix").trace(scale=0.05)
    sim = Simulator(config=ZEC12_CONFIG_2)
    sim.warm_run(iter(trace))
    return sim.state_dict()


def test_save_load_round_trip(tmp_path):
    state = _warmed_state()
    path = tmp_path / "state.json.gz"
    save_state(path, state)
    assert load_state(path) == state


def test_saves_are_byte_stable(tmp_path):
    state = _warmed_state()
    save_state(tmp_path / "a.gz", state)
    save_state(tmp_path / "b.gz", state)
    assert (tmp_path / "a.gz").read_bytes() == (tmp_path / "b.gz").read_bytes()


def test_store_keys_on_full_provenance(tmp_path):
    store = CheckpointStore(tmp_path)
    identities = [
        ("model-a", "trace-a", ("stratified", 1), 0),
        ("model-b", "trace-a", ("stratified", 1), 0),
        ("model-a", "trace-b", ("stratified", 1), 0),
        ("model-a", "trace-a", ("stratified", 2), 0),
        ("model-a", "trace-a", ("stratified", 1), 1),
    ]
    paths = {store.path_for(*identity) for identity in identities}
    assert len(paths) == len(identities)


def test_store_load_is_tolerant(tmp_path):
    store = CheckpointStore(tmp_path)
    identity = ("model", "trace", ("plan",), 0)
    # Absent -> None, not an error.
    assert store.load(*identity) is None
    # Corrupt bytes on disk -> None (recompute), never a crash.
    store.path_for(*identity).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(*identity).write_bytes(b"not gzip at all")
    assert store.load(*identity) is None


def test_store_save_load_entries_clear(tmp_path):
    store = CheckpointStore(tmp_path)
    state = {"version": 1, "payload": [1, 2, 3]}
    store.save("m", "t", ("p",), 0, state)
    store.save("m", "t", ("p",), 1, state)
    assert store.has("m", "t", ("p",), 0)
    assert store.load("m", "t", ("p",), 1) == state
    assert len(store.entries()) == 2
    assert store.clear() == 2
    assert store.entries() == []
