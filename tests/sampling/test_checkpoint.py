"""Checkpoint serialization: round trips, byte stability, tolerant loads."""

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.sampling import CheckpointStore, load_state, save_state
from repro.workloads.catalog import workload_by_name


def _warmed_state():
    trace = workload_by_name("Informix").trace(scale=0.05)
    sim = Simulator(config=ZEC12_CONFIG_2)
    sim.warm_run(iter(trace))
    return sim.state_dict()


def test_save_load_round_trip(tmp_path):
    state = _warmed_state()
    path = tmp_path / "state.json.gz"
    save_state(path, state)
    assert load_state(path) == state


def test_saves_are_byte_stable(tmp_path):
    state = _warmed_state()
    save_state(tmp_path / "a.gz", state)
    save_state(tmp_path / "b.gz", state)
    assert (tmp_path / "a.gz").read_bytes() == (tmp_path / "b.gz").read_bytes()


def test_store_keys_on_full_provenance(tmp_path):
    store = CheckpointStore(tmp_path)
    identities = [
        ("model-a", "trace-a", ("stratified", 1), 0),
        ("model-b", "trace-a", ("stratified", 1), 0),
        ("model-a", "trace-b", ("stratified", 1), 0),
        ("model-a", "trace-a", ("stratified", 2), 0),
        ("model-a", "trace-a", ("stratified", 1), 1),
    ]
    paths = {store.path_for(*identity) for identity in identities}
    assert len(paths) == len(identities)


def test_store_load_is_tolerant(tmp_path):
    store = CheckpointStore(tmp_path)
    identity = ("model", "trace", ("plan",), 0)
    # Absent -> None, not an error.
    assert store.load(*identity) is None
    # Corrupt bytes on disk -> None (recompute), never a crash.
    store.path_for(*identity).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(*identity).write_bytes(b"not gzip at all")
    assert store.load(*identity) is None


def test_store_save_load_entries_clear(tmp_path):
    store = CheckpointStore(tmp_path)
    state = {"version": 1, "payload": [1, 2, 3]}
    store.save("m", "t", ("p",), 0, state)
    store.save("m", "t", ("p",), 1, state)
    assert store.has("m", "t", ("p",), 0)
    assert store.load("m", "t", ("p",), 1) == state
    assert len(store.entries()) == 2
    assert store.clear() == 2
    assert store.entries() == []


def test_crash_mid_write_checkpoint_is_skipped_and_reported(tmp_path):
    """A gzip stream cut mid-member must degrade to a recompute.

    Truncation reproduces a crash (or copy) that bypassed the atomic
    rename: gzip raises ``EOFError``/``zlib.error`` there, which escaped
    the original ``(OSError, ValueError)`` tolerance net and crashed the
    loading run instead of recomputing.
    """
    store = CheckpointStore(tmp_path)
    state = _warmed_state()
    identity = ("m", "t", ("p",), 0)
    path = store.save(*identity, state)
    intact = path.read_bytes()
    assert store.load(*identity) == state
    # Cut the member mid-stream: valid gzip magic, truncated payload.
    path.write_bytes(intact[: len(intact) // 2])
    assert store.load(*identity) is None
    # Skip-and-report: the degradation is visible, not silent.
    assert len(store.skipped) == 1
    skipped_path, reason = store.skipped[0]
    assert skipped_path == path
    assert reason  # names the exception


def test_truncated_tail_checkpoint_is_skipped(tmp_path):
    """Losing only the gzip trailer (last few bytes) is also tolerated."""
    store = CheckpointStore(tmp_path)
    identity = ("m", "t", ("p",), 1)
    path = store.save(*identity, _warmed_state())
    intact = path.read_bytes()
    path.write_bytes(intact[:-4])  # drop the ISIZE trailer
    assert store.load(*identity) is None
    assert store.skipped


def test_checkpoint_holding_non_object_json_is_rejected(tmp_path):
    """Bytes that gunzip and parse but aren't a state dict are garbage."""
    import gzip
    import json

    store = CheckpointStore(tmp_path)
    identity = ("m", "t", ("p",), 2)
    path = store.path_for(*identity)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(gzip.compress(json.dumps([1, 2, 3]).encode()))
    assert store.load(*identity) is None
    assert store.skipped


def test_entries_and_clear_tolerate_missing_directory():
    store = CheckpointStore("/nonexistent/definitely/missing")
    assert store.entries() == []
    assert store.clear() == 0


def test_clear_tolerates_losing_the_unlink_race(tmp_path, monkeypatch):
    """A concurrent deleter removing files mid-clear is not an error."""
    store = CheckpointStore(tmp_path)
    for index in range(3):
        store.save("m", "t", ("p",), index, {"version": 1})
    paths = store.entries()
    assert len(paths) == 3
    # Simulate the race: another process already unlinked one entry
    # between the listing and our unlink.
    original_entries = CheckpointStore.entries

    def racing_entries(self):
        listed = original_entries(self)
        listed[1].unlink()  # the "other process"
        return listed

    monkeypatch.setattr(CheckpointStore, "entries", racing_entries)
    assert store.clear() == 2  # counts only what *this* call removed
    monkeypatch.undo()
    assert store.entries() == []
