"""Checkpoint serialization: round trips, byte stability, tolerant loads."""

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.sampling import CheckpointStore, load_state, save_state
from repro.workloads.catalog import workload_by_name


def _warmed_state():
    trace = workload_by_name("Informix").trace(scale=0.05)
    sim = Simulator(config=ZEC12_CONFIG_2)
    sim.warm_run(iter(trace))
    return sim.state_dict()


def test_save_load_round_trip(tmp_path):
    state = _warmed_state()
    path = tmp_path / "state.json.gz"
    save_state(path, state)
    assert load_state(path) == state


def test_saves_are_byte_stable(tmp_path):
    state = _warmed_state()
    save_state(tmp_path / "a.gz", state)
    save_state(tmp_path / "b.gz", state)
    assert (tmp_path / "a.gz").read_bytes() == (tmp_path / "b.gz").read_bytes()


def test_store_keys_on_full_provenance(tmp_path):
    store = CheckpointStore(tmp_path)
    identities = [
        ("model-a", "trace-a", ("stratified", 1), 0),
        ("model-b", "trace-a", ("stratified", 1), 0),
        ("model-a", "trace-b", ("stratified", 1), 0),
        ("model-a", "trace-a", ("stratified", 2), 0),
        ("model-a", "trace-a", ("stratified", 1), 1),
    ]
    paths = {store.path_for(*identity) for identity in identities}
    assert len(paths) == len(identities)


def test_store_load_is_tolerant(tmp_path):
    store = CheckpointStore(tmp_path)
    identity = ("model", "trace", ("plan",), 0)
    # Absent -> None, not an error.
    assert store.load(*identity) is None
    # Corrupt bytes on disk -> None (recompute), never a crash.
    store.path_for(*identity).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(*identity).write_bytes(b"not gzip at all")
    assert store.load(*identity) is None


def test_store_save_load_entries_clear(tmp_path):
    store = CheckpointStore(tmp_path)
    state = {"version": 1, "payload": [1, 2, 3]}
    store.save("m", "t", ("p",), 0, state)
    store.save("m", "t", ("p",), 1, state)
    assert store.has("m", "t", ("p",), 0)
    assert store.load("m", "t", ("p",), 1) == state
    assert len(store.entries()) == 2
    assert store.clear() == 2
    assert store.entries() == []


def test_crash_mid_write_checkpoint_is_skipped_and_reported(tmp_path):
    """A gzip stream cut mid-member must degrade to a recompute.

    Truncation reproduces a crash (or copy) that bypassed the atomic
    rename: gzip raises ``EOFError``/``zlib.error`` there, which escaped
    the original ``(OSError, ValueError)`` tolerance net and crashed the
    loading run instead of recomputing.
    """
    store = CheckpointStore(tmp_path)
    state = _warmed_state()
    identity = ("m", "t", ("p",), 0)
    path = store.save(*identity, state)
    intact = path.read_bytes()
    assert store.load(*identity) == state
    # Cut the member mid-stream: valid gzip magic, truncated payload.
    path.write_bytes(intact[: len(intact) // 2])
    assert store.load(*identity) is None
    # Skip-and-report: the degradation is visible, not silent.
    assert len(store.skipped) == 1
    skipped_path, reason = store.skipped[0]
    assert skipped_path == path
    assert reason  # names the exception


def test_truncated_tail_checkpoint_is_skipped(tmp_path):
    """Losing only the gzip trailer (last few bytes) is also tolerated."""
    store = CheckpointStore(tmp_path)
    identity = ("m", "t", ("p",), 1)
    path = store.save(*identity, _warmed_state())
    intact = path.read_bytes()
    path.write_bytes(intact[:-4])  # drop the ISIZE trailer
    assert store.load(*identity) is None
    assert store.skipped


def test_checkpoint_holding_non_object_json_is_rejected(tmp_path):
    """Bytes that gunzip and parse but aren't a state dict are garbage."""
    import gzip
    import json

    store = CheckpointStore(tmp_path)
    identity = ("m", "t", ("p",), 2)
    path = store.path_for(*identity)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(gzip.compress(json.dumps([1, 2, 3]).encode()))
    assert store.load(*identity) is None
    assert store.skipped


def test_entries_and_clear_tolerate_missing_directory():
    store = CheckpointStore("/nonexistent/definitely/missing")
    assert store.entries() == []
    assert store.clear() == 0


def test_clear_tolerates_losing_the_unlink_race(tmp_path, monkeypatch):
    """A concurrent deleter removing files mid-clear is not an error."""
    store = CheckpointStore(tmp_path)
    for index in range(3):
        store.save("m", "t", ("p",), index, {"version": 1})
    paths = store.entries()
    assert len(paths) == 3
    # Simulate the race: another process already unlinked one entry
    # between the listing and our unlink.
    original_entries = CheckpointStore.entries

    def racing_entries(self):
        listed = original_entries(self)
        listed[1].unlink()  # the "other process"
        return listed

    monkeypatch.setattr(CheckpointStore, "entries", racing_entries)
    assert store.clear() == 2  # counts only what *this* call removed
    monkeypatch.undo()
    assert store.entries() == []


class TestPrune:
    """``prune(max_entries|max_age)``: bounding long-lived stores."""

    def _aged_store(self, tmp_path):
        """A store with entries whose mtimes step 100s apart."""
        store = CheckpointStore(tmp_path)
        import os

        for index in range(5):
            path = store.save("m", "t", ("p",), index, {"version": 1})
            os.utime(path, (1000.0 + index * 100, 1000.0 + index * 100))
        return store

    def test_noop_without_limits(self, tmp_path):
        store = self._aged_store(tmp_path)
        assert store.prune() == 0
        assert len(store.entries()) == 5

    def test_max_entries_keeps_the_newest(self, tmp_path):
        import os

        store = self._aged_store(tmp_path)
        assert store.prune(max_entries=2) == 3
        survivors = sorted(os.path.getmtime(p) for p in store.entries())
        assert survivors == [1300.0, 1400.0]

    def test_max_age_drops_the_stale(self, tmp_path):
        store = self._aged_store(tmp_path)
        # Against now=1500, a 250s horizon keeps mtimes >= 1250.
        assert store.prune(max_age=250, now=1500.0) == 3
        assert len(store.entries()) == 2

    def test_limits_compose(self, tmp_path):
        store = self._aged_store(tmp_path)
        assert store.prune(max_entries=1, max_age=350, now=1500.0) == 4
        assert len(store.entries()) == 1

    def test_negative_limits_are_rejected(self, tmp_path):
        import pytest

        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.prune(max_entries=-1)
        with pytest.raises(ValueError):
            store.prune(max_age=-0.5)

    def test_prune_tolerates_the_unlink_race(self, tmp_path, monkeypatch):
        """A file vanishing between listing and unlink is not counted."""
        store = self._aged_store(tmp_path)
        original_entries = CheckpointStore.entries

        def racing_entries(self):
            listed = original_entries(self)
            listed[0].unlink()  # the "other process" wins the oldest
            return listed

        monkeypatch.setattr(CheckpointStore, "entries", racing_entries)
        assert store.prune(max_entries=0) == 4
        monkeypatch.undo()
        assert store.entries() == []


def _racing_writer(args):
    """Worker: hammer one store key with saves tagged by writer id."""
    directory, writer, rounds = args
    store = CheckpointStore(directory)
    identity = ("m", "race", ("p",), 0)
    for round_index in range(rounds):
        store.save(*identity, {"version": 1, "writer": writer,
                               "round": round_index,
                               "payload": list(range(200))})
    return store.load(*identity)


def test_concurrent_writers_racing_one_key(tmp_path):
    """Two processes hammering the same key never corrupt the entry.

    The atomic ``os.replace`` protocol means every read observes some
    writer's *complete* state — a torn or interleaved file would either
    fail to gunzip (load -> ``None``) or decode to a mixed payload,
    and both are asserted against here.
    """
    import multiprocessing

    rounds = 25
    with multiprocessing.get_context("spawn").Pool(2) as pool:
        finals = pool.map(
            _racing_writer,
            [(str(tmp_path), "a", rounds), (str(tmp_path), "b", rounds)])
    store = CheckpointStore(tmp_path)
    state = store.load("m", "race", ("p",), 0)
    for observed in [*finals, state]:
        assert observed is not None, "a read saw a torn checkpoint"
        assert observed["version"] == 1
        assert observed["writer"] in ("a", "b")
        assert observed["payload"] == list(range(200))
    assert store.skipped == []
    assert len(store.entries()) == 1
