"""Estimators, confidence intervals, and the refusing error report."""

import math

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import (
    ConfidenceBoundExceeded,
    SamplingPlan,
    check_bounds,
    confidence_interval,
    error_report,
    ratio_estimate,
    run_sampled,
)
from repro.workloads.catalog import workload_by_name


def test_confidence_interval_known_values():
    mean, half = confidence_interval([1.0, 2.0, 3.0, 4.0], z=2.0)
    assert mean == pytest.approx(2.5)
    # s^2 = 5/3, half-width = 2 * sqrt(5/3 / 4).
    assert half == pytest.approx(2.0 * math.sqrt(5.0 / 12.0))


def test_confidence_interval_degenerate_inputs():
    assert confidence_interval([]) == (0.0, math.inf)
    mean, half = confidence_interval([7.0])
    assert mean == 7.0 and half == math.inf


def test_ratio_estimate_weights_by_denominator():
    # Unequal intervals: the ratio-of-sums is not the mean of ratios.
    assert ratio_estimate([10, 1], [10, 10]) == pytest.approx(0.55)
    assert ratio_estimate([], []) == 0.0


def test_ratio_estimate_zero_denominator_is_nan_not_zero():
    """Cycles measured over zero instructions has no defensible estimate.

    The old behavior returned 0.0 — a precise-looking lie that sailed
    through every bound check.  ``nan`` is refused everywhere downstream.
    """
    assert math.isnan(ratio_estimate([10.0], [0.0]))
    assert math.isnan(ratio_estimate([1.0, 2.0], [0.0, 0.0]))
    # All-zero observations are a different case: nothing happened, 0.0.
    assert ratio_estimate([0.0, 0.0], [0.0, 0.0]) == 0.0


def test_confidence_interval_excludes_non_finite_samples():
    """A nan sample used to poison the variance into nan — which compares
    false against every bound and slipped through as a tight CI."""
    mean, half = confidence_interval([1.0, math.nan, 3.0])
    assert mean == pytest.approx(2.0)  # finite samples only
    assert half == math.inf  # dropped samples force an explicit refusal
    assert confidence_interval([math.nan, math.inf]) == (0.0, math.inf)


def test_degenerate_metric_estimate_is_refused_not_reported():
    from repro.sampling import MetricEstimate

    degenerate = MetricEstimate(name="cpi", value=math.nan,
                                ci_halfwidth=0.0, ci_measure=0.0)
    assert degenerate.degenerate
    assert not degenerate.within(1.0)  # even an infinite bound refuses nan
    nan_measure = MetricEstimate(name="cpi", value=1.0,
                                 ci_halfwidth=math.nan, ci_measure=math.nan)
    assert not nan_measure.within(math.inf)


def test_check_bounds_names_the_degenerate_cause():
    """The refusal message distinguishes no-estimate from wide-CI."""

    class _Fake:
        def metric_estimates(self):
            from repro.sampling import MetricEstimate

            return [
                MetricEstimate("cpi", math.nan, 0.0, 0.0),
                MetricEstimate("bad_outcome_fraction", 0.2, math.inf,
                               math.inf),
            ]

    problems = check_bounds(_Fake(), max_ci=0.02)
    assert len(problems) == 2
    assert "degenerate estimate" in problems[0]
    assert "unbounded CI" in problems[1]


@pytest.fixture(scope="module")
def tpf_sampled():
    trace = workload_by_name("TPF").trace(scale=0.1)
    plan = SamplingPlan(interval=400, period=8000, warmup=400, seed=3)
    return trace, run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)


def test_error_report_refuses_default_bound(tpf_sampled):
    # At this tiny scale the CI is far wider than 2%: the report must
    # refuse rather than print a precise-looking number.
    _, sampled = tpf_sampled
    assert check_bounds(sampled)  # non-empty problem list
    with pytest.raises(ConfidenceBoundExceeded, match="refusing to report"):
        error_report(sampled)


def test_error_report_renders_with_loose_bound(tpf_sampled):
    trace, sampled = tpf_sampled
    full = simulate(trace, config=ZEC12_CONFIG_2)
    text = error_report(sampled, full=full, max_ci=1.0)
    assert "cpi" in text and "bad_outcome_fraction" in text
    assert "error" in text  # sampled-vs-full deltas present
    assert f"{len(sampled.measurements)}" in text


def test_metric_estimates_use_the_right_ci_measure(tpf_sampled):
    _, sampled = tpf_sampled
    by_name = {m.name: m for m in sampled.metric_estimates()}
    cpi = by_name["cpi"]
    bad = by_name["bad_outcome_fraction"]
    # CPI is bound-checked relative to the estimate ...
    assert cpi.ci_measure == pytest.approx(cpi.ci_halfwidth / cpi.value)
    # ... the fraction absolutely.
    assert bad.ci_measure == pytest.approx(bad.ci_halfwidth)
