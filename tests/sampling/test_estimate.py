"""Estimators, confidence intervals, and the refusing error report."""

import math

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import (
    ConfidenceBoundExceeded,
    SamplingPlan,
    check_bounds,
    confidence_interval,
    error_report,
    ratio_estimate,
    run_sampled,
)
from repro.workloads.catalog import workload_by_name


def test_confidence_interval_known_values():
    mean, half = confidence_interval([1.0, 2.0, 3.0, 4.0], z=2.0)
    assert mean == pytest.approx(2.5)
    # s^2 = 5/3, half-width = 2 * sqrt(5/3 / 4).
    assert half == pytest.approx(2.0 * math.sqrt(5.0 / 12.0))


def test_confidence_interval_degenerate_inputs():
    assert confidence_interval([]) == (0.0, math.inf)
    mean, half = confidence_interval([7.0])
    assert mean == 7.0 and half == math.inf


def test_ratio_estimate_weights_by_denominator():
    # Unequal intervals: the ratio-of-sums is not the mean of ratios.
    assert ratio_estimate([10, 1], [10, 10]) == pytest.approx(0.55)
    assert ratio_estimate([], []) == 0.0


@pytest.fixture(scope="module")
def tpf_sampled():
    trace = workload_by_name("TPF").trace(scale=0.1)
    plan = SamplingPlan(interval=400, period=8000, warmup=400, seed=3)
    return trace, run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)


def test_error_report_refuses_default_bound(tpf_sampled):
    # At this tiny scale the CI is far wider than 2%: the report must
    # refuse rather than print a precise-looking number.
    _, sampled = tpf_sampled
    assert check_bounds(sampled)  # non-empty problem list
    with pytest.raises(ConfidenceBoundExceeded, match="refusing to report"):
        error_report(sampled)


def test_error_report_renders_with_loose_bound(tpf_sampled):
    trace, sampled = tpf_sampled
    full = simulate(trace, config=ZEC12_CONFIG_2)
    text = error_report(sampled, full=full, max_ci=1.0)
    assert "cpi" in text and "bad_outcome_fraction" in text
    assert "error" in text  # sampled-vs-full deltas present
    assert f"{len(sampled.measurements)}" in text


def test_metric_estimates_use_the_right_ci_measure(tpf_sampled):
    _, sampled = tpf_sampled
    by_name = {m.name: m for m in sampled.metric_estimates()}
    cpi = by_name["cpi"]
    bad = by_name["bad_outcome_fraction"]
    # CPI is bound-checked relative to the estimate ...
    assert cpi.ci_measure == pytest.approx(cpi.ci_halfwidth / cpi.value)
    # ... the fraction absolutely.
    assert bad.ci_measure == pytest.approx(bad.ci_halfwidth)
