"""Interval runner: determinism, checkpoint resume, and the error pin."""

import pytest

from repro.audit import Auditor
from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3
from repro.core.events import OutcomeKind
from repro.engine.simulator import Simulator, simulate
from repro.sampling import (
    CheckpointStore,
    SamplingPlan,
    load_state,
    run_sampled,
    save_state,
)
from repro.workloads.catalog import workload_by_name

SMALL_PLAN = SamplingPlan(interval=400, period=8000, warmup=400)


def _payload(sampled):
    """Measurement payloads without the ``from_checkpoint`` provenance flag."""
    return [(m.index, m.start, m.stop, m.delta) for m in sampled.measurements]


def _bad_fraction(counters) -> float:
    bad = sum(count for kind, count in counters.outcomes.items() if kind.is_bad)
    return bad / counters.branches


def test_sampled_run_shape_and_extrapolation():
    trace = workload_by_name("TPF").trace(scale=0.1)
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert len(sampled.measurements) == len(SMALL_PLAN.intervals(len(trace)))
    # Instruction count extrapolates exactly (one record per instruction).
    assert sampled.result.counters.instructions == len(trace)
    # Every measured interval contributed the planned record count.
    for measurement in sampled.measurements:
        assert measurement.instructions == SMALL_PLAN.interval
        assert measurement.cycles > 0
    assert sampled.detailed_records == sum(
        m.stop - m.start + SMALL_PLAN.warmup for m in sampled.measurements
    )
    # Outcome classification survives scaling: fractions sum to ~1.
    fractions = sampled.result.counters.outcome_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)


def test_trace_shorter_than_one_interval_is_rejected():
    trace = workload_by_name("TPF").trace(scale=0.1)[:500]
    with pytest.raises(ValueError, match="shorter than one"):
        run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)


@pytest.mark.parametrize("config", [ZEC12_CONFIG_1, ZEC12_CONFIG_2,
                                    ZEC12_CONFIG_3],
                         ids=lambda c: c.name)
@pytest.mark.parametrize("workload", ["TPF", "Informix"])
def test_checkpointed_rerun_is_deterministic(tmp_path, config, workload):
    """Cold (saving) and warm (loading) sampled runs agree exactly."""
    trace = workload_by_name(workload).trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=config, plan=SMALL_PLAN, checkpoint_store=store,
                  trace_key=f"{workload}-test")
    cold = run_sampled(trace, **kwargs)
    assert cold.checkpoints_saved == len(cold.measurements)
    assert cold.checkpoints_loaded == 0
    warm = run_sampled(trace, **kwargs)
    assert warm.checkpoints_loaded == len(warm.measurements)
    assert warm.checkpoints_saved == 0
    assert _payload(warm) == _payload(cold)
    assert warm.result.counters.state_dict() == cold.result.counters.state_dict()
    assert warm.cpi == cold.cpi
    assert warm.bad_outcome_fraction == cold.bad_outcome_fraction


def test_checkpointed_rerun_is_deterministic_under_audit(tmp_path):
    trace = workload_by_name("TPF").trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                  checkpoint_store=store, trace_key="tpf-audited")
    cold = run_sampled(trace, audit=Auditor(), **kwargs)
    warm = run_sampled(trace, audit=Auditor(), **kwargs)
    assert warm.checkpoints_loaded == len(warm.measurements)
    assert _payload(warm) == _payload(cold)


def test_save_load_resume_matches_uninterrupted_run(tmp_path):
    """Snapshot mid-run, restore from disk, resume: counters exactly match."""
    trace = workload_by_name("TPF").trace(scale=0.05)
    split = len(trace) // 2

    uninterrupted = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    reference = uninterrupted.run(trace)

    first = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    for record in trace[:split]:
        first.step(record)
    path = tmp_path / "mid.json.gz"
    save_state(path, first.state_dict())

    resumed = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    resumed.load_state_dict(load_state(path))
    for record in trace[split:]:
        resumed.step(record)
    result = resumed.finish()

    assert result.counters.state_dict() == reference.counters.state_dict()
    assert result.cpi == reference.cpi


def test_stale_checkpoint_is_recomputed(tmp_path):
    """A checkpoint from a different schema degrades to recompute."""
    trace = workload_by_name("TPF").trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                  checkpoint_store=store, trace_key="tpf-stale")
    cold = run_sampled(trace, **kwargs)
    # Corrupt every stored state's version marker.
    sim = Simulator(config=ZEC12_CONFIG_2)
    model = sim.model_fingerprint()
    for interval in SMALL_PLAN.intervals(len(trace)):
        identity = (model, "tpf-stale", SMALL_PLAN.cache_key(), interval.index)
        state = store.load(*identity)
        state["version"] = 99_999
        save_state(store.path_for(*identity), state)
    redone = run_sampled(trace, **kwargs)
    assert redone.checkpoints_loaded == 0
    assert redone.checkpoints_saved == len(redone.measurements)
    assert redone.measurements == cold.measurements


def test_sampled_matches_full_within_two_percent():
    """The accuracy pin: |ΔCPI| ≤ 2% and |Δbad-fraction| ≤ 2% absolute.

    A smaller-scale version of the bench_sampling.py demonstration, on the
    TPF trace at scale 0.35 with a fixed plan — fully deterministic, so the
    asserted errors cannot drift without a code change.
    """
    trace = workload_by_name("TPF").trace(scale=0.35)
    plan = SamplingPlan(mode="stratified", interval=500, period=8000,
                        warmup=500, seed=12345)
    full = simulate(trace, config=ZEC12_CONFIG_2)
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)

    cpi_error = abs(sampled.cpi - full.cpi) / full.cpi
    bad_error = abs(sampled.bad_outcome_fraction - full.bad_outcome_fraction)
    assert cpi_error <= 0.02
    assert bad_error <= 0.02
    # The sampled run only simulated a small detailed fraction.
    assert sampled.detailed_records / len(trace) <= 0.15


def test_interval_telemetry_events():
    from repro.telemetry import Telemetry, Tracer

    trace = workload_by_name("TPF").trace(scale=0.1)
    telemetry = Telemetry(tracer=Tracer())
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                          telemetry=telemetry)
    events = [e for e in telemetry.tracer.events if e["kind"] == "interval"]
    phases = {event["phase"] for event in events}
    assert phases == {"warming", "warmup", "measure", "end"}
    # One warmup/measure/end triple per interval.
    for phase in ("warmup", "measure", "end"):
        count = sum(1 for event in events if event["phase"] == phase)
        assert count == len(sampled.measurements)


def test_trace_file_window_iteration(tmp_path):
    """run_sampled over an on-disk TraceFile equals the in-memory run."""
    from repro.trace.reader import open_trace
    from repro.trace.writer import write_trace

    spec = workload_by_name("TPF")
    records = spec.trace(scale=0.1)
    path = tmp_path / "tpf.trace"
    with open(path, "wb") as stream:
        write_trace(stream, records)
    with open_trace(path) as trace_file:
        streamed = run_sampled(trace_file, config=ZEC12_CONFIG_2,
                               plan=SMALL_PLAN)
    in_memory = run_sampled(records, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert streamed.measurements == in_memory.measurements
    assert streamed.cpi == in_memory.cpi


class _CountingTrace:
    """A sized pure iterable (no __getitem__, no iter_from) that counts
    full iteration passes and records yielded."""

    def __init__(self, records):
        self._records = list(records)
        self.passes = 0
        self.yielded = 0

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        self.passes += 1
        for record in self._records:
            self.yielded += 1
            yield record


def test_interval_consumption_is_single_pass():
    """The O(N*K) regression pin: one stream pass, <= N records read.

    The old ``_window`` helper re-iterated a non-seekable trace from
    record 0 for *every* interval; a plan with K intervals read ~K*N
    records.  The cursor must consume exactly one pass and never read past
    the last measured interval.
    """
    records = workload_by_name("TPF").trace(scale=0.1)
    counting = _CountingTrace(records)
    sampled = run_sampled(counting, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert counting.passes == 1
    assert counting.yielded <= len(records)
    # Pure-iterable consumption is not just bounded — it is equivalent.
    reference = run_sampled(records, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert _payload(sampled) == _payload(reference)


def test_trace_file_windows_reuse_one_stream(tmp_path):
    """Contiguous windows over a TraceFile share a single iter_from pass."""
    from repro.sampling.runner import _TraceCursor
    from repro.trace.reader import open_trace
    from repro.trace.writer import write_trace

    records = workload_by_name("TPF").trace(scale=0.05)
    path = tmp_path / "tpf.trace"
    with open(path, "wb") as stream:
        write_trace(stream, records)
    with open_trace(path) as trace_file:
        cursor = _TraceCursor(trace_file)
        out = list(cursor.window(0, 100))
        out += list(cursor.window(100, 250))
        out += list(cursor.window(250, 400))
        assert cursor.stream_passes == 1  # contiguous: no re-seek
        cursor.skip_to(1_000)
        out += list(cursor.window(1_000, 1_100))
        assert cursor.stream_passes == 2  # one re-seek for the jump
    assert out == list(records[:400]) + list(records[1_000:1_100])


def test_cursor_refuses_to_rewind():
    from repro.sampling.runner import _TraceCursor

    cursor = _TraceCursor(list(range(10)))
    list(cursor.window(0, 5))
    with pytest.raises(ValueError, match="rewind"):
        cursor.skip_to(2)
