"""Interval runner: determinism, checkpoint resume, and the error pin."""

import pytest

from repro.audit import Auditor
from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3
from repro.core.events import OutcomeKind
from repro.engine.simulator import Simulator, simulate
from repro.sampling import (
    CheckpointStore,
    SamplingPlan,
    load_state,
    run_sampled,
    save_state,
)
from repro.workloads.catalog import workload_by_name

SMALL_PLAN = SamplingPlan(interval=400, period=8000, warmup=400)


def _payload(sampled):
    """Measurement payloads without the ``from_checkpoint`` provenance flag."""
    return [(m.index, m.start, m.stop, m.delta) for m in sampled.measurements]


def _bad_fraction(counters) -> float:
    bad = sum(count for kind, count in counters.outcomes.items() if kind.is_bad)
    return bad / counters.branches


def test_sampled_run_shape_and_extrapolation():
    trace = workload_by_name("TPF").trace(scale=0.1)
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert len(sampled.measurements) == len(SMALL_PLAN.intervals(len(trace)))
    # Instruction count extrapolates exactly (one record per instruction).
    assert sampled.result.counters.instructions == len(trace)
    # Every measured interval contributed the planned record count.
    for measurement in sampled.measurements:
        assert measurement.instructions == SMALL_PLAN.interval
        assert measurement.cycles > 0
    assert sampled.detailed_records == sum(
        m.stop - m.start + SMALL_PLAN.warmup for m in sampled.measurements
    )
    # Outcome classification survives scaling: fractions sum to ~1.
    fractions = sampled.result.counters.outcome_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)


def test_trace_shorter_than_one_interval_is_rejected():
    trace = workload_by_name("TPF").trace(scale=0.1)[:500]
    with pytest.raises(ValueError, match="shorter than one"):
        run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)


@pytest.mark.parametrize("config", [ZEC12_CONFIG_1, ZEC12_CONFIG_2,
                                    ZEC12_CONFIG_3],
                         ids=lambda c: c.name)
@pytest.mark.parametrize("workload", ["TPF", "Informix"])
def test_checkpointed_rerun_is_deterministic(tmp_path, config, workload):
    """Cold (saving) and warm (loading) sampled runs agree exactly."""
    trace = workload_by_name(workload).trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=config, plan=SMALL_PLAN, checkpoint_store=store,
                  trace_key=f"{workload}-test")
    cold = run_sampled(trace, **kwargs)
    assert cold.checkpoints_saved == len(cold.measurements)
    assert cold.checkpoints_loaded == 0
    warm = run_sampled(trace, **kwargs)
    assert warm.checkpoints_loaded == len(warm.measurements)
    assert warm.checkpoints_saved == 0
    assert _payload(warm) == _payload(cold)
    assert warm.result.counters.state_dict() == cold.result.counters.state_dict()
    assert warm.cpi == cold.cpi
    assert warm.bad_outcome_fraction == cold.bad_outcome_fraction


def test_checkpointed_rerun_is_deterministic_under_audit(tmp_path):
    trace = workload_by_name("TPF").trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                  checkpoint_store=store, trace_key="tpf-audited")
    cold = run_sampled(trace, audit=Auditor(), **kwargs)
    warm = run_sampled(trace, audit=Auditor(), **kwargs)
    assert warm.checkpoints_loaded == len(warm.measurements)
    assert _payload(warm) == _payload(cold)


def test_save_load_resume_matches_uninterrupted_run(tmp_path):
    """Snapshot mid-run, restore from disk, resume: counters exactly match."""
    trace = workload_by_name("TPF").trace(scale=0.05)
    split = len(trace) // 2

    uninterrupted = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    reference = uninterrupted.run(trace)

    first = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    for record in trace[:split]:
        first.step(record)
    path = tmp_path / "mid.json.gz"
    save_state(path, first.state_dict())

    resumed = Simulator(config=ZEC12_CONFIG_2, audit=Auditor())
    resumed.load_state_dict(load_state(path))
    for record in trace[split:]:
        resumed.step(record)
    result = resumed.finish()

    assert result.counters.state_dict() == reference.counters.state_dict()
    assert result.cpi == reference.cpi


def test_stale_checkpoint_is_recomputed(tmp_path):
    """A checkpoint from a different schema degrades to recompute."""
    trace = workload_by_name("TPF").trace(scale=0.1)
    store = CheckpointStore(tmp_path)
    kwargs = dict(config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                  checkpoint_store=store, trace_key="tpf-stale")
    cold = run_sampled(trace, **kwargs)
    # Corrupt every stored state's version marker.
    sim = Simulator(config=ZEC12_CONFIG_2)
    model = sim.model_fingerprint()
    for interval in SMALL_PLAN.intervals(len(trace)):
        identity = (model, "tpf-stale", SMALL_PLAN.cache_key(), interval.index)
        state = store.load(*identity)
        state["version"] = 99_999
        save_state(store.path_for(*identity), state)
    redone = run_sampled(trace, **kwargs)
    assert redone.checkpoints_loaded == 0
    assert redone.checkpoints_saved == len(redone.measurements)
    assert redone.measurements == cold.measurements


def test_sampled_matches_full_within_two_percent():
    """The accuracy pin: |ΔCPI| ≤ 2% and |Δbad-fraction| ≤ 2% absolute.

    A smaller-scale version of the bench_sampling.py demonstration, on the
    TPF trace at scale 0.35 with a fixed plan — fully deterministic, so the
    asserted errors cannot drift without a code change.
    """
    trace = workload_by_name("TPF").trace(scale=0.35)
    plan = SamplingPlan(mode="stratified", interval=500, period=8000,
                        warmup=500, seed=12345)
    full = simulate(trace, config=ZEC12_CONFIG_2)
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)

    cpi_error = abs(sampled.cpi - full.cpi) / full.cpi
    bad_error = abs(sampled.bad_outcome_fraction - full.bad_outcome_fraction)
    assert cpi_error <= 0.02
    assert bad_error <= 0.02
    # The sampled run only simulated a small detailed fraction.
    assert sampled.detailed_records / len(trace) <= 0.15


def test_interval_telemetry_events():
    from repro.telemetry import Telemetry, Tracer

    trace = workload_by_name("TPF").trace(scale=0.1)
    telemetry = Telemetry(tracer=Tracer())
    sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=SMALL_PLAN,
                          telemetry=telemetry)
    events = [e for e in telemetry.tracer.events if e["kind"] == "interval"]
    phases = {event["phase"] for event in events}
    assert phases == {"warming", "warmup", "measure", "end"}
    # One warmup/measure/end triple per interval.
    for phase in ("warmup", "measure", "end"):
        count = sum(1 for event in events if event["phase"] == phase)
        assert count == len(sampled.measurements)


def test_trace_file_window_iteration(tmp_path):
    """run_sampled over an on-disk TraceFile equals the in-memory run."""
    from repro.trace.reader import open_trace
    from repro.trace.writer import write_trace

    spec = workload_by_name("TPF")
    records = spec.trace(scale=0.1)
    path = tmp_path / "tpf.trace"
    with open(path, "wb") as stream:
        write_trace(stream, records)
    with open_trace(path) as trace_file:
        streamed = run_sampled(trace_file, config=ZEC12_CONFIG_2,
                               plan=SMALL_PLAN)
    in_memory = run_sampled(records, config=ZEC12_CONFIG_2, plan=SMALL_PLAN)
    assert streamed.measurements == in_memory.measurements
    assert streamed.cpi == in_memory.cpi
