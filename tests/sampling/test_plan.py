"""Sampling-plan geometry: interval placement, validation, cache keys."""

import pytest

from repro.sampling import Interval, SamplingPlan


def test_systematic_interval_placement():
    plan = SamplingPlan(mode="systematic", interval=100, period=1000, warmup=50)
    intervals = plan.intervals(3000)
    assert intervals == [
        Interval(index=0, warm_start=0, start=50, stop=150),
        Interval(index=1, warm_start=1000, start=1050, stop=1150),
        Interval(index=2, warm_start=2000, start=2050, stop=2150),
    ]


def test_short_tail_period_is_skipped():
    plan = SamplingPlan(mode="systematic", interval=100, period=1000, warmup=50)
    # The 2nd period has only 120 records: too short for warmup + interval.
    intervals = plan.intervals(1120)
    assert len(intervals) == 1
    # But a tail that exactly fits the warmup + interval footprint is kept.
    assert len(plan.intervals(2150)) == 3


def test_stratified_offsets_are_deterministic_and_in_range():
    plan = SamplingPlan(mode="stratified", interval=100, period=1000,
                        warmup=50, seed=7)
    first = plan.intervals(10_000)
    again = plan.intervals(10_000)
    assert first == again
    for index, interval in enumerate(first):
        period_start = index * 1000
        assert period_start <= interval.warm_start
        assert interval.stop <= period_start + 1000
        assert interval.start - interval.warm_start == 50
        assert interval.stop - interval.start == 100


def test_stratified_seed_changes_offsets():
    a = SamplingPlan(mode="stratified", interval=100, period=1000, seed=1,
                     warmup=0)
    b = SamplingPlan(mode="stratified", interval=100, period=1000, seed=2,
                     warmup=0)
    assert a.intervals(50_000) != b.intervals(50_000)


def test_validation_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SamplingPlan(mode="adaptive")
    with pytest.raises(ValueError):
        SamplingPlan(interval=0)
    with pytest.raises(ValueError):
        SamplingPlan(warmup=-1)
    with pytest.raises(ValueError):
        SamplingPlan(interval=600, warmup=500, period=1000)


def test_cache_key_covers_every_knob():
    base = SamplingPlan()
    changed = [
        SamplingPlan(mode="systematic"),
        SamplingPlan(interval=base.interval + 1),
        SamplingPlan(period=base.period + 1),
        SamplingPlan(warmup=base.warmup + 1),
        SamplingPlan(seed=base.seed + 1),
    ]
    keys = {plan.cache_key() for plan in changed}
    assert base.cache_key() not in keys
    assert len(keys) == len(changed)


def test_detailed_fraction_and_describe():
    plan = SamplingPlan(interval=1000, period=20_000, warmup=1000)
    assert plan.detailed_fraction == pytest.approx(0.1)
    assert "stratified" in plan.describe()
    assert "20000" in plan.describe() or "20,000" in plan.describe()
