"""Property-fuzz regression: seeded random traces under full audit.

The acceptance bar from the audit work: 200 seeded cases rotating through
every shipped :data:`repro.audit.fuzz.FUZZ_CONFIGS` variant, all audits
enabled, zero violations.  Failures print a ddmin-shrunk, replayable
repro via :func:`repro.audit.fuzz.render_failure`.
"""

import zlib

import pytest

from repro.audit.fuzz import (
    FUZZ_CONFIGS,
    build_trace,
    fuzz,
    render_failure,
    run_case,
)

FUZZ_CASES = 200
FUZZ_SEED = 0


def test_every_config_variant_is_fuzzed():
    # 200 cases round-robin over the variants: each sees a dozen+ traces.
    assert FUZZ_CASES >= 2 * len(FUZZ_CONFIGS)


def test_trace_builder_is_deterministic():
    assert build_trace(1234) == build_trace(1234)
    assert build_trace(1234) != build_trace(1235)


@pytest.mark.fuzz
@pytest.mark.slow
def test_200_seeded_cases_pass_under_full_audit():
    failures = fuzz(cases=FUZZ_CASES, seed=FUZZ_SEED)
    if failures:
        pytest.fail(
            "audit fuzz found invariant violations:\n\n"
            + "\n\n".join(render_failure(failure) for failure in failures)
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(FUZZ_CONFIGS))
def test_each_config_survives_a_long_trace(name):
    # One longer trace per variant, beyond the campaign's default length.
    # zlib.crc32 (not hash()) keeps the seed stable across interpreter runs.
    violation = run_case(
        build_trace(seed=zlib.crc32(name.encode()) & 0xFFFF, length=1200),
        FUZZ_CONFIGS[name],
    )
    assert violation is None, str(violation)
