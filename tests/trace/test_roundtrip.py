"""Binary trace format round-trip and error handling."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import BranchKind
from repro.trace.reader import TraceFormatError, iter_trace, load_trace
from repro.trace.record import TraceRecord
from repro.trace.writer import save_trace, write_trace


def roundtrip(records):
    stream = io.BytesIO()
    write_trace(stream, records)
    stream.seek(0)
    return list(iter_trace(stream))


kinds = st.sampled_from([None] + list(BranchKind))


@st.composite
def trace_records(draw):
    kind = draw(kinds)
    taken = draw(st.booleans()) if kind is not None else False
    if kind is not None and kind.always_taken:
        taken = True
    target = draw(st.integers(min_value=1, max_value=2**48)) if taken else None
    return TraceRecord(
        address=draw(st.integers(min_value=0, max_value=2**48)),
        length=draw(st.sampled_from([2, 4, 6])),
        kind=kind,
        taken=taken,
        target=target,
    )


class TestRoundTrip:
    def test_empty_trace(self):
        assert roundtrip([]) == []

    def test_single_plain_record(self):
        records = [TraceRecord(address=0x100, length=4)]
        assert roundtrip(records) == records

    def test_taken_branch_record(self):
        records = [
            TraceRecord(address=0x100, length=6, kind=BranchKind.CALL,
                        taken=True, target=0x2000)
        ]
        assert roundtrip(records) == records

    @given(st.lists(trace_records(), max_size=200))
    def test_arbitrary_traces_roundtrip(self, records):
        assert roundtrip(records) == records

    def test_file_roundtrip(self, tmp_path):
        records = [
            TraceRecord(address=0x100, length=4),
            TraceRecord(address=0x104, length=4, kind=BranchKind.COND,
                        taken=True, target=0x100),
        ]
        path = tmp_path / "trace.ztrc"
        count = save_trace(path, records)
        assert count == 2
        assert load_trace(path) == records


class TestFormatErrors:
    def test_bad_magic(self):
        stream = io.BytesIO(b"XXXX" + b"\x00" * 12)
        with pytest.raises(TraceFormatError, match="magic"):
            list(iter_trace(stream))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            list(iter_trace(io.BytesIO(b"ZT")))

    def test_truncated_records(self):
        stream = io.BytesIO()
        write_trace(stream, [TraceRecord(address=0, length=4)] * 3)
        data = stream.getvalue()[:-10]
        with pytest.raises(TraceFormatError, match="truncated"):
            list(iter_trace(io.BytesIO(data)))

    def test_wrong_version(self):
        import struct

        from repro.trace.writer import HEADER, MAGIC

        stream = io.BytesIO(HEADER.pack(MAGIC, 99, 0))
        with pytest.raises(TraceFormatError, match="version"):
            list(iter_trace(stream))
