"""Binary trace format round-trip and error handling."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import BranchKind
from repro.trace.reader import TraceFormatError, iter_trace, load_trace, open_trace
from repro.trace.record import TraceRecord
from repro.trace.writer import HEADER, MAGIC, RECORD, save_trace, write_trace


def roundtrip(records):
    stream = io.BytesIO()
    write_trace(stream, records)
    stream.seek(0)
    return list(iter_trace(stream))


kinds = st.sampled_from([None] + list(BranchKind))


@st.composite
def trace_records(draw):
    """Any valid record: every BranchKind x taken x target combination.

    Not-taken branches may carry a recorded target (including target 0) —
    the v2 format's explicit target-valid bit must round-trip those too.
    """
    kind = draw(kinds)
    taken = draw(st.booleans()) if kind is not None else False
    if kind is not None and kind.always_taken:
        taken = True
    if taken:
        target = draw(st.integers(min_value=1, max_value=2**48))
    elif kind is not None:
        target = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**48))
        )
    else:
        target = None
    return TraceRecord(
        address=draw(st.integers(min_value=0, max_value=2**48)),
        length=draw(st.sampled_from([2, 4, 6])),
        kind=kind,
        taken=taken,
        target=target,
    )


class TestRoundTrip:
    def test_empty_trace(self):
        assert roundtrip([]) == []

    def test_single_plain_record(self):
        records = [TraceRecord(address=0x100, length=4)]
        assert roundtrip(records) == records

    def test_taken_branch_record(self):
        records = [
            TraceRecord(address=0x100, length=6, kind=BranchKind.CALL,
                        taken=True, target=0x2000)
        ]
        assert roundtrip(records) == records

    @given(st.lists(trace_records(), max_size=200))
    def test_arbitrary_traces_roundtrip(self, records):
        assert roundtrip(records) == records

    def test_not_taken_branch_keeps_target(self):
        # The v1 format dropped targets of not-taken branches (and invented
        # them when the raw field happened to be nonzero); v2's explicit
        # target-valid bit makes these exact.
        records = [
            TraceRecord(address=0x100, length=4, kind=BranchKind.COND,
                        taken=False, target=0x2000),
            TraceRecord(address=0x104, length=4, kind=BranchKind.COND,
                        taken=False, target=None),
            TraceRecord(address=0x108, length=4, kind=BranchKind.COND,
                        taken=False, target=0),
        ]
        assert roundtrip(records) == records

    def test_every_kind_taken_target_combination(self):
        records = []
        address = 0x1000
        for kind in [None] + list(BranchKind):
            takens = [False] if kind is None else (
                [True] if kind.always_taken else [False, True]
            )
            for taken in takens:
                if taken:
                    target_choices = [0x2000]
                elif kind is not None:
                    target_choices = [None, 0, 0x2000]
                else:
                    target_choices = [None]
                for target in target_choices:
                    record = TraceRecord(address=address, length=4, kind=kind,
                                         taken=taken, target=target)
                    record.validate()
                    records.append(record)
                    address += 4
        assert roundtrip(records) == records

    def test_file_roundtrip(self, tmp_path):
        records = [
            TraceRecord(address=0x100, length=4),
            TraceRecord(address=0x104, length=4, kind=BranchKind.COND,
                        taken=True, target=0x100),
        ]
        path = tmp_path / "trace.ztrc"
        count = save_trace(path, records)
        assert count == 2
        assert load_trace(path) == records


class TestFormatErrors:
    def test_bad_magic(self):
        stream = io.BytesIO(b"XXXX" + b"\x00" * 12)
        with pytest.raises(TraceFormatError, match="magic"):
            list(iter_trace(stream))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            list(iter_trace(io.BytesIO(b"ZT")))

    def test_truncated_records(self):
        stream = io.BytesIO()
        write_trace(stream, [TraceRecord(address=0, length=4)] * 3)
        data = stream.getvalue()[:-10]
        with pytest.raises(TraceFormatError, match="truncated"):
            list(iter_trace(io.BytesIO(data)))

    def test_wrong_version(self):
        stream = io.BytesIO(HEADER.pack(MAGIC, 99, 0))
        with pytest.raises(TraceFormatError, match="version"):
            list(iter_trace(stream))

    def test_trailing_bytes_rejected(self):
        stream = io.BytesIO()
        write_trace(stream, [TraceRecord(address=0, length=4)] * 3)
        stream.seek(0, 2)
        stream.write(b"\x00")
        stream.seek(0)
        with pytest.raises(TraceFormatError, match="trailing"):
            list(iter_trace(stream))


class TestVersion1Compatibility:
    """v1 streams stay readable via the legacy target heuristic."""

    @staticmethod
    def _v1_stream(rows):
        # rows: (meta, address, target) triples in v1 packing (no bit 7).
        body = b"".join(RECORD.pack(*row) for row in rows)
        return io.BytesIO(HEADER.pack(MAGIC, 1, len(rows)) + body)

    def test_v1_taken_branch(self):
        # kind COND = code 1 at bits 3..5, taken bit 6.
        meta = 4 | (1 << 3) | (1 << 6)
        [record] = list(iter_trace(self._v1_stream([(meta, 0x100, 0x2000)])))
        assert record == TraceRecord(address=0x100, length=4,
                                     kind=BranchKind.COND, taken=True,
                                     target=0x2000)

    def test_v1_not_taken_branch_heuristic(self):
        # v1's lossy reconstruction: a not-taken branch with a nonzero raw
        # target field reads back with that target; zero reads back as None.
        meta = 4 | (1 << 3)
        records = list(iter_trace(self._v1_stream(
            [(meta, 0x100, 0x2000), (meta, 0x104, 0)]
        )))
        assert records[0].target == 0x2000
        assert records[1].target is None


class TestTraceFile:
    def make_trace(self, tmp_path, n=100):
        records = [
            TraceRecord(address=0x100 + 4 * i, length=4) for i in range(n)
        ]
        path = tmp_path / "trace.ztrc"
        save_trace(path, records)
        return path, records

    def test_open_trace_metadata(self, tmp_path):
        path, records = self.make_trace(tmp_path)
        with open_trace(path) as trace:
            assert len(trace) == len(records)
            assert trace.version == 2

    def test_full_iteration_matches_load(self, tmp_path):
        path, records = self.make_trace(tmp_path)
        with open_trace(path) as trace:
            assert list(trace) == records

    def test_iter_from_window(self, tmp_path):
        path, records = self.make_trace(tmp_path)
        with open_trace(path) as trace:
            assert list(trace.iter_from(10, 20)) == records[10:20]
            assert list(trace.iter_from(95)) == records[95:]
            assert list(trace.iter_from(40, 40)) == []
            assert list(trace.iter_from(90, 10_000)) == records[90:]

    def test_iter_from_large_window_chunks(self, tmp_path):
        path, records = self.make_trace(tmp_path, n=9000)
        with open_trace(path) as trace:
            assert list(trace.iter_from(1, 8999)) == records[1:8999]

    def test_random_record_access(self, tmp_path):
        path, records = self.make_trace(tmp_path)
        with open_trace(path) as trace:
            assert trace.record(0) == records[0]
            assert trace.record(99) == records[99]
            with pytest.raises(IndexError):
                trace.record(100)

    def test_size_mismatch_rejected(self, tmp_path):
        path, _ = self.make_trace(tmp_path)
        with open(path, "ab") as stream:
            stream.write(b"\x00")
        with pytest.raises(TraceFormatError, match="size"):
            open_trace(path)

    def test_closed_file_rejects_access(self, tmp_path):
        path, _ = self.make_trace(tmp_path)
        trace = open_trace(path)
        trace.close()
        with pytest.raises(ValueError, match="closed"):
            list(trace.iter_from(0, 1))
