"""``TraceStreamDecoder``: incremental decode of headerless record bytes."""

import pytest

from repro.isa.opcodes import BranchKind
from repro.trace.reader import TraceFormatError, TraceStreamDecoder
from repro.trace.record import TraceRecord
from repro.trace.writer import RECORD, pack_record


def _records():
    return [
        TraceRecord(address=0x1000, length=4, kind=None),
        TraceRecord(address=0x1004, length=6, kind=BranchKind.COND,
                    taken=True, target=0x2000),
        TraceRecord(address=0x2000, length=2, kind=BranchKind.RETURN,
                    taken=True, target=0x1008),
    ]


def _wire(records):
    return b"".join(pack_record(record) for record in records)


def test_whole_stream_in_one_feed():
    records = _records()
    decoder = TraceStreamDecoder()
    assert decoder.feed(_wire(records)) == records
    assert decoder.pending == 0
    assert decoder.decoded == len(records)
    decoder.finish()  # clean end: no-op


def test_byte_at_a_time_reassembly():
    """Any fragmentation of the stream decodes to the same records."""
    records = _records()
    wire = _wire(records)
    decoder = TraceStreamDecoder()
    out = []
    for index in range(len(wire)):
        out.extend(decoder.feed(wire[index:index + 1]))
    assert out == records
    decoder.finish()


def test_feed_straddling_record_boundaries():
    records = _records()
    wire = _wire(records)
    cut = RECORD.size + 7  # mid-second-record
    decoder = TraceStreamDecoder()
    first = decoder.feed(wire[:cut])
    assert first == records[:1]
    assert decoder.pending == 7
    rest = decoder.feed(wire[cut:])
    assert rest == records[1:]
    assert decoder.pending == 0


def test_mid_record_end_raises_typed_error():
    """A stream torn mid-record reports pending bytes and decoded count."""
    wire = _wire(_records())
    decoder = TraceStreamDecoder()
    decoder.feed(wire[:-5])
    assert decoder.decoded == 2
    assert decoder.pending == RECORD.size - 5
    with pytest.raises(TraceFormatError, match="mid-record"):
        decoder.finish()


def test_unsupported_version_is_rejected():
    with pytest.raises(TraceFormatError, match="unsupported"):
        TraceStreamDecoder(version=99)


def test_empty_feeds_are_free():
    decoder = TraceStreamDecoder()
    assert decoder.feed(b"") == []
    assert decoder.pending == 0
    decoder.finish()
