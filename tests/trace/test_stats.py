"""Tests for the Table 4 statistics counters."""

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord
from repro.trace.stats import (
    LARGE_FOOTPRINT_TAKEN_BRANCHES,
    TraceStats,
    collect_stats,
)

from tests.conftest import branch, loop_trace, straightline


class TestCounters:
    def test_empty_stats(self):
        stats = TraceStats()
        assert stats.instructions == 0
        assert stats.taken_fraction == 0.0
        assert stats.branch_density == 0.0

    def test_straightline_counts(self):
        stats = collect_stats(straightline(0x100, 10))
        assert stats.instructions == 10
        assert stats.branches == 0
        assert stats.unique_branch_addresses == 0

    def test_loop_counts_unique_once(self):
        stats = collect_stats(loop_trace(iterations=5))
        assert stats.branches == 5
        assert stats.taken_branches == 4
        assert stats.unique_branch_addresses == 1
        assert stats.unique_taken_branch_addresses == 1

    def test_never_taken_branch_not_in_taken_set(self):
        records = [branch(0x100, taken=False, target=0x200)]
        stats = collect_stats(records)
        assert stats.unique_branch_addresses == 1
        assert stats.unique_taken_branch_addresses == 0

    def test_taken_fraction(self):
        records = [
            branch(0x100, taken=True, target=0x200),
            branch(0x200, taken=False, target=0x300),
        ]
        assert collect_stats(records).taken_fraction == 0.5

    def test_branch_density(self):
        records = straightline(0x100, 3) + [
            branch(0x10C, taken=True, target=0x100)
        ]
        assert collect_stats(records).branch_density == 0.25


class TestFootprint:
    def test_large_footprint_threshold(self):
        stats = TraceStats()
        stats.unique_taken_branch_addresses = LARGE_FOOTPRINT_TAKEN_BRANCHES
        assert not stats.is_large_footprint
        stats.unique_taken_branch_addresses = LARGE_FOOTPRINT_TAKEN_BRANCHES + 1
        assert stats.is_large_footprint

    def test_estimated_footprint_uses_paper_range(self):
        stats = TraceStats()
        stats.unique_taken_branch_addresses = 1000
        low, high = stats.estimated_btb_footprint_bytes
        assert (low, high) == (24_000, 30_000)

    def test_unique_instruction_bytes_row_granular(self):
        # Ten 4-byte instructions in one 32-byte row + the next row.
        stats = collect_stats(straightline(0x100, 10, length=4))
        assert stats.unique_instruction_bytes == 64
