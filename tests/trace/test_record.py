"""Tests for trace records."""

import pytest

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord


class TestNextAddress:
    def test_non_branch_flows_sequentially(self):
        record = TraceRecord(address=0x100, length=6)
        assert record.next_address == 0x106

    def test_not_taken_branch_flows_sequentially(self):
        record = TraceRecord(address=0x100, length=4, kind=BranchKind.COND,
                             taken=False, target=0x300)
        assert record.next_address == 0x104

    def test_taken_branch_flows_to_target(self):
        record = TraceRecord(address=0x100, length=4, kind=BranchKind.COND,
                             taken=True, target=0x300)
        assert record.next_address == 0x300

    def test_taken_without_target_raises(self):
        record = TraceRecord(address=0x100, length=4, kind=BranchKind.RETURN,
                             taken=True)
        with pytest.raises(ValueError):
            record.next_address


class TestValidate:
    def test_valid_record_passes(self):
        TraceRecord(address=0, length=4).validate()

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(address=0, length=3).validate()

    def test_taken_non_branch_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(address=0, length=4, taken=True).validate()

    def test_taken_without_target_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(address=0, length=4, kind=BranchKind.COND,
                        taken=True).validate()

    def test_always_taken_kind_cannot_fall_through(self):
        with pytest.raises(ValueError):
            TraceRecord(address=0, length=4, kind=BranchKind.UNCOND,
                        taken=False, target=0x10).validate()

    def test_not_taken_cond_with_encoded_target_is_fine(self):
        TraceRecord(address=0, length=4, kind=BranchKind.COND,
                    taken=False, target=0x40).validate()
