"""The metrics registry: merge algebra, snapshots, Prometheus export.

The distributed contract rests on the merge semantics being a proper
commutative monoid per metric type — shard arrival order must never
change a total — so the merge laws are property-tested with Hypothesis
on top of the example-based round-trip and golden-format pins.
"""

import json

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    validate_snapshot,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

BOUNDS = (1.0, 10.0, 100.0)


def _registry_with(observations, counter_bumps=(), gauge_sets=()):
    registry = MetricsRegistry()
    hist = registry.histogram("h", "test", ("who",), buckets=BOUNDS)
    for who, value in observations:
        hist.observe(value, who=who)
    counter = registry.counter("c", "test", ("who",))
    for who, amount in counter_bumps:
        counter.inc(amount, who=who)
    gauge = registry.gauge("g", "test")
    for value in gauge_sets:
        gauge.set(value)
    return registry


#: One worker's worth of activity: labeled observations, counter bumps,
#: and gauge settings.
_WHO = st.sampled_from(["a", "b"])
_SHARD = st.tuples(
    st.lists(st.tuples(_WHO, st.floats(0, 1000, allow_nan=False)),
             max_size=8),
    st.lists(st.tuples(_WHO, st.floats(0, 100, allow_nan=False)),
             max_size=8),
    st.lists(st.floats(-50, 50, allow_nan=False), max_size=4),
)


def _merged(shards, order):
    target = MetricsRegistry()
    for index in order:
        target.merge_snapshot(_registry_with(*shards[index]).snapshot())
    return target.snapshot()


def _assert_snapshots_close(left, right):
    """Snapshot equality up to float summation order.

    Merge is associative/commutative over the *observations*; float
    addition regroups, so sums and counter values compare with approx
    while every structural field and integer count compares exactly.
    """
    assert [m["name"] for m in left["metrics"]] \
        == [m["name"] for m in right["metrics"]]
    for mine, theirs in zip(left["metrics"], right["metrics"]):
        assert mine["type"] == theirs["type"]
        assert mine["labelnames"] == theirs["labelnames"]
        assert mine.get("buckets") == theirs.get("buckets")
        assert len(mine["series"]) == len(theirs["series"])
        for a, b in zip(mine["series"], theirs["series"]):
            assert a["labels"] == b["labels"]
            if mine["type"] == "histogram":
                assert a["counts"] == b["counts"]
                assert a["count"] == b["count"]
                assert a["sum"] == pytest.approx(b["sum"])
            else:
                assert a["value"] == pytest.approx(b["value"])


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(_SHARD, min_size=2, max_size=4))
    def test_merge_is_commutative(self, shards):
        forward = _merged(shards, range(len(shards)))
        backward = _merged(shards, reversed(range(len(shards))))
        _assert_snapshots_close(forward, backward)

    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(_SHARD, min_size=3, max_size=3))
    def test_merge_is_associative(self, shards):
        # (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), via intermediate registries.
        ab = MetricsRegistry()
        ab.merge_snapshot(_registry_with(*shards[0]).snapshot())
        ab.merge_snapshot(_registry_with(*shards[1]).snapshot())
        left = MetricsRegistry()
        left.merge_snapshot(ab.snapshot())
        left.merge_snapshot(_registry_with(*shards[2]).snapshot())

        bc = MetricsRegistry()
        bc.merge_snapshot(_registry_with(*shards[1]).snapshot())
        bc.merge_snapshot(_registry_with(*shards[2]).snapshot())
        right = MetricsRegistry()
        right.merge_snapshot(_registry_with(*shards[0]).snapshot())
        right.merge_snapshot(bc.snapshot())
        _assert_snapshots_close(left.snapshot(), right.snapshot())

    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(_SHARD, min_size=1, max_size=4))
    def test_merged_totals_equal_single_process_run(self, shards):
        """K shards merged == one registry fed every event (the relay pin)."""
        serial = _registry_with(
            [obs for shard in shards for obs in shard[0]],
            [bump for shard in shards for bump in shard[1]],
            # Gauge merge is max, so the serial equivalent is the max too.
            [max(v for shard in shards for v in shard[2])]
            if any(shard[2] for shard in shards) else [],
        )
        merged = _merged(shards, range(len(shards)))
        for fresh, entry in zip(serial.snapshot()["metrics"],
                                merged["metrics"]):
            assert fresh["name"] == entry["name"]
            if entry["type"] == "histogram":
                for mine, theirs in zip(fresh["series"], entry["series"]):
                    assert mine["counts"] == theirs["counts"]
                    assert mine["count"] == theirs["count"]
                    assert mine["sum"] == pytest.approx(theirs["sum"])
            elif entry["type"] == "counter":
                for mine, theirs in zip(fresh["series"], entry["series"]):
                    assert mine["value"] == pytest.approx(theirs["value"])


class TestMetricTypes:
    def test_counter_refuses_to_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_must_match_declaration(self):
        counter = Counter("c", labelnames=("result",))
        counter.inc(result="hit")
        with pytest.raises(ValueError):
            counter.inc(backend="serial")
        with pytest.raises(ValueError):
            counter.inc()

    def test_histogram_needs_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_histogram_totals_and_mean(self):
        hist = Histogram("h", buckets=BOUNDS)
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        total, count = hist.totals()
        assert (total, count) == (505.5, 3)
        assert hist.mean() == pytest.approx(505.5 / 3)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad")
        with pytest.raises(ValueError):
            Gauge("g", labelnames=("bad-label",))

    def test_registry_get_or_create_checks_identity(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("x",))
        assert registry.counter("c", labelnames=("x",)) is registry.get("c")
        with pytest.raises(ValueError):
            registry.gauge("c")
        with pytest.raises(ValueError):
            registry.counter("c", labelnames=("y",))
        registry.histogram("h", buckets=BOUNDS)
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0,))


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        registry = _registry_with([("a", 0.5), ("b", 50.0)],
                                  [("a", 3.0)], [7.0])
        path = tmp_path / "metrics.json"
        registry.write_snapshot(path)
        payload = json.loads(path.read_text())
        assert validate_snapshot(payload) == []
        assert payload["metrics_schema"] == METRICS_SCHEMA
        restored = MetricsRegistry.from_snapshot(payload)
        assert restored.snapshot() == registry.snapshot()

    def test_validate_rejects_damage(self):
        good = _registry_with([("a", 1.0)]).snapshot()
        assert validate_snapshot(good) == []
        assert validate_snapshot([]) != []
        assert validate_snapshot({"metrics_schema": 99, "metrics": []}) != []

        hist_index = next(i for i, m in enumerate(good["metrics"])
                          if m["type"] == "histogram")
        bad = json.loads(json.dumps(good))
        bad["metrics"][hist_index]["series"][0]["counts"] = [1]
        assert any("bucket counts" in p for p in validate_snapshot(bad))

        bad = json.loads(json.dumps(good))
        bad["metrics"][hist_index]["series"][0]["count"] = 99
        assert any("'count' says" in p for p in validate_snapshot(bad))

        bad = json.loads(json.dumps(good))
        bad["metrics"].append(bad["metrics"][0])
        assert any("duplicate" in p for p in validate_snapshot(bad))

    def test_merge_rejects_invalid_snapshot(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot({"metrics_schema": 2})


class TestPrometheus:
    def test_golden_format(self):
        """The exposition shape is pinned verbatim: HELP/TYPE comments,
        cumulative le-buckets with +Inf, _sum/_count, label escaping."""
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "runs by result",
                         ("result",)).inc(2, result="cached")
        hist = registry.histogram("repro_run_seconds", "wall seconds",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.to_prometheus() == (
            "# HELP repro_run_seconds wall seconds\n"
            "# TYPE repro_run_seconds histogram\n"
            'repro_run_seconds_bucket{le="0.1"} 1\n'
            'repro_run_seconds_bucket{le="1"} 2\n'
            'repro_run_seconds_bucket{le="+Inf"} 3\n'
            "repro_run_seconds_sum 5.55\n"
            "repro_run_seconds_count 3\n"
            "# HELP repro_runs_total runs by result\n"
            "# TYPE repro_runs_total counter\n"
            'repro_runs_total{result="cached"} 2\n'
        )

    def test_parse_round_trip(self):
        registry = _registry_with([("a", 0.5), ("a", 50.0)],
                                  [("b", 4.0)], [2.5])
        families = parse_prometheus(registry.to_prometheus())
        assert families["c"]["type"] == "counter"
        assert families["c"]["samples"][("c", (("who", "b"),))] == 4.0
        assert families["g"]["samples"][("g", ())] == 2.5
        hist = families["h"]
        assert hist["type"] == "histogram"
        # Cumulative buckets: le=1 holds 1, le=+Inf holds all 2.
        assert hist["samples"][
            ("h_bucket", (("le", "1"), ("who", "a")))] == 1
        assert hist["samples"][
            ("h_bucket", (("le", "+Inf"), ("who", "a")))] == 2
        assert hist["samples"][("h_count", (("who", "a"),))] == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a sample line at all {")

    def test_label_escaping_survives_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("path",)).inc(
            path='tricky"quote\\back\nnewline')
        families = parse_prometheus(registry.to_prometheus())
        ((_, labels),) = families["c"]["samples"]
        assert dict(labels)["path"] == 'tricky"quote\\back\nnewline'

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
