"""The telemetry relay: shards, aggregation, parity, tolerance.

The distributed pins, in rough dependency order:

* a ``WorkerSession`` streams schema-valid events and publishes its
  metrics snapshot atomically;
* a relay-on ``run_parallel`` (K∈{2,4}) stays **bit-identical** to both
  a relay-off parallel run and a plain serial run — observation must
  not perturb the experiment;
* the merged Chrome trace carries one pid lane per worker plus the
  orchestrator lane, monotone time inside each lane, and a metadata
  block accounting for every shard;
* aggregation is tolerant: a truncated shard (crashed worker) degrades
  to a ``skipped`` ledger entry, a manifest-expected shard that never
  appeared lands on ``missing`` — mirroring ``CheckpointStore.skipped``;
* worker metric shards merge to the serial run's totals and survive the
  Prometheus round trip.
"""

import json

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import ParallelPlan, TraceSource, run_parallel
from repro.telemetry.distributed import (
    ORCHESTRATOR,
    RELAY_ENV,
    TelemetryRelay,
    aggregate,
    read_manifest,
    read_shard,
)
from repro.telemetry.metrics import MetricsRegistry, parse_prometheus
from repro.telemetry.monitor import STATUS_ENV
from repro.workloads.catalog import workload_by_name
from tests.conftest import loop_trace

WORKLOAD = "TPF"
SCALE = 0.05


@pytest.fixture(autouse=True)
def _no_ambient_relay(monkeypatch):
    """Tests control the relay/status env themselves."""
    monkeypatch.delenv(RELAY_ENV, raising=False)
    monkeypatch.delenv(STATUS_ENV, raising=False)


def _source() -> TraceSource:
    return TraceSource.for_workload(workload_by_name(WORKLOAD), SCALE)


def _relay_run(tmp_path, k: int, backend: str = "serial"):
    relay = TelemetryRelay(tmp_path / "relay", run_id="t")
    stitched = run_parallel(_source(), config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(k), backend=backend,
                            relay=relay)
    return relay, stitched


class TestWorkerSession:
    def test_streams_events_and_publishes_metrics(self, tmp_path):
        relay = TelemetryRelay(tmp_path, run_id="r1")
        session = relay.worker_session("w0", 0)
        simulate(loop_trace(80), config=ZEC12_CONFIG_2,
                 telemetry=session.telemetry)
        session.registry.counter("c_total", "test").inc(3)
        session.close()

        events, skipped = read_shard(relay.shard_path("w0", 0))
        assert events and not skipped
        snapshot = json.loads(relay.metrics_path("w0", 0).read_text())
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.get("c_total").value() == 3

    def test_session_without_metrics_writes_no_snapshot(self, tmp_path):
        relay = TelemetryRelay(tmp_path, run_id="r1")
        session = relay.worker_session("w0", 0)
        session.close()
        assert not relay.metrics_path("w0", 0).exists()


class TestRelayParity:
    @pytest.mark.parametrize("k", [2, 4])
    def test_relay_on_parallel_is_bit_identical_to_serial(self, tmp_path, k):
        """The acceptance pin: observed fan-out == unobserved serial."""
        serial = simulate(workload_by_name(WORKLOAD).trace(SCALE),
                          config=ZEC12_CONFIG_2)
        plain = run_parallel(_source(), config=ZEC12_CONFIG_2,
                             plan=ParallelPlan(k), backend="serial")
        _, relayed = _relay_run(tmp_path, k)
        assert relayed.result.counters.state_dict() \
            == serial.counters.state_dict()
        assert relayed.result.counters.state_dict() \
            == plain.result.counters.state_dict()
        assert relayed.cpi == serial.cpi

    def test_relay_parity_holds_on_process_backend(self, tmp_path):
        serial = simulate(workload_by_name(WORKLOAD).trace(SCALE),
                          config=ZEC12_CONFIG_2)
        _, relayed = _relay_run(tmp_path, 2, backend="process")
        assert relayed.result.counters.state_dict() \
            == serial.counters.state_dict()


class TestAggregation:
    def test_merged_trace_has_a_lane_per_worker(self, tmp_path):
        k = 4
        relay, _ = _relay_run(tmp_path, k)
        merged = aggregate(relay.directory, relay.run_id)
        assert not merged.missing and not merged.skipped
        # K worker lanes plus the orchestrator lane, orchestrator first.
        assert merged.workers[0] == ORCHESTRATOR
        assert len(merged.workers) == k + 1
        meta = merged.trace["metadata"]
        pids = {e.get("pid") for e in merged.trace["traceEvents"]}
        assert len(pids) >= k + 1
        assert {s["worker"] for s in meta["shards"]} == set(merged.workers)
        assert meta["missing"] == []

    def test_lane_time_is_monotone(self, tmp_path):
        relay, _ = _relay_run(tmp_path, 2)
        merged = aggregate(relay.directory, relay.run_id)
        last: dict = {}
        for event in merged.trace["traceEvents"]:
            if event.get("ph") == "M" or "ts" not in event:
                continue
            lane = (event["pid"], event.get("tid"))
            assert float(event["ts"]) >= last.get(lane, float("-inf"))
            last[lane] = float(event["ts"])

    def test_truncated_shard_degrades_to_skipped(self, tmp_path):
        relay, _ = _relay_run(tmp_path, 2)
        shard = relay.shard_path("w0", 0)
        text = shard.read_text()
        shard.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2])
        merged = aggregate(relay.directory, relay.run_id)
        assert any(path == shard for path, _ in merged.skipped)
        # The surviving lines still merge; the other lanes are whole.
        assert merged.events

    def test_manifest_missing_shard_is_reported(self, tmp_path):
        relay, _ = _relay_run(tmp_path, 2)
        victim = relay.shard_path("w1", 1)
        victim.unlink()
        merged = aggregate(relay.directory, relay.run_id)
        assert victim.name in merged.missing
        assert victim.name in merged.trace["metadata"]["missing"]

    def test_manifest_records_every_expected_shard(self, tmp_path):
        relay, _ = _relay_run(tmp_path, 2)
        manifest = read_manifest(relay.directory)
        expected = set(manifest["expected"])
        assert relay.shard_path(ORCHESTRATOR, 0).name in expected
        assert relay.shard_path("w0", 0).name in expected
        assert relay.shard_path("w1", 1).name in expected

    def test_exports_pass_the_artifact_checker(self, tmp_path):
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                               / "scripts"))
        try:
            import check_trace
        finally:
            sys.path.pop(0)
        relay, _ = _relay_run(tmp_path, 2)
        merged = aggregate(relay.directory, relay.run_id)
        chrome = tmp_path / "merged.json"
        jsonl = tmp_path / "merged.jsonl"
        merged.write_chrome(chrome)
        merged.write_jsonl(jsonl)
        assert check_trace.check_merged_file(chrome) == []
        assert check_trace.check_jsonl_file(jsonl) == []


class TestMetricsRelay:
    def test_shard_metrics_merge_to_serial_totals(self, tmp_path):
        """Merged slice counters equal the serial run's whole-trace totals,
        and survive the Prometheus round trip — the snapshot acceptance
        criterion."""
        serial = simulate(workload_by_name(WORKLOAD).trace(SCALE),
                          config=ZEC12_CONFIG_2)
        relay, _ = _relay_run(tmp_path, 4)
        merged = aggregate(relay.directory, relay.run_id)
        instructions = merged.registry.get("repro_slice_instructions_total")
        assert instructions.value() == serial.counters.instructions

        families = parse_prometheus(merged.registry.to_prometheus())
        assert families["repro_slice_instructions_total"]["samples"][
            ("repro_slice_instructions_total", ())
        ] == serial.counters.instructions
        seconds = families["repro_slice_seconds"]
        assert seconds["samples"][("repro_slice_seconds_count", ())] == 4

    def test_snapshot_round_trips_through_file(self, tmp_path):
        relay, _ = _relay_run(tmp_path, 2)
        merged = aggregate(relay.directory, relay.run_id)
        target = tmp_path / "metrics.json"
        merged.registry.write_snapshot(target)
        restored = MetricsRegistry.from_snapshot(
            json.loads(target.read_text()))
        assert restored.snapshot() == merged.registry.snapshot()
