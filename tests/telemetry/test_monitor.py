"""The status board: heartbeats, tolerant folds, rendering, ``repro top``."""

import io
import json

import pytest

from repro.core.config import ZEC12_CONFIG_1
from repro.experiments.pool import ExecutionLog, RunSpec, run_many
from repro.telemetry.monitor import (
    STATUS_ENV,
    BoardState,
    StatusBoard,
    read_board,
    render_status,
    render_summary,
    top,
)
from repro.workloads.catalog import workload_by_name


@pytest.fixture(autouse=True)
def _no_ambient_board(monkeypatch):
    monkeypatch.delenv(STATUS_ENV, raising=False)


def _board_with(tmp_path, beats):
    board = StatusBoard(tmp_path / "status.jsonl")
    for beat in beats:
        board.beat(**beat)
    return board


class TestStatusBoard:
    def test_from_env_is_none_when_unset(self):
        assert StatusBoard.from_env() is None

    def test_activate_round_trips_through_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STATUS_ENV, "")  # keep monkeypatch cleanup
        board = StatusBoard(tmp_path / "s.jsonl")
        board.activate()
        found = StatusBoard.from_env()
        assert found is not None and found.path == board.path

    def test_beat_appends_one_json_line(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="TPF/c1", state="measuring", done=10, total=100),
        ])
        (line,) = board.path.read_text().splitlines()
        record = json.loads(line)
        assert record["spec"] == "TPF/c1"
        assert record["state"] == "measuring"
        assert record["done"] == 10

    def test_beat_swallows_filesystem_errors(self, tmp_path):
        board = StatusBoard(tmp_path / "missing-dir" / "s.jsonl")
        board.beat("x", "queued")  # must not raise


class TestReadBoard:
    def test_missing_file_is_none(self, tmp_path):
        assert read_board(tmp_path / "nope.jsonl") is None

    def test_latest_state_wins_and_totals_carry_forward(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="measuring", done=10, total=100),
            dict(spec="a", state="done", done=100,
                 instructions=5000, seconds=2.0),
            dict(spec="b", state="cached", instructions=100, seconds=0.5),
        ])
        state = read_board(board.path)
        assert state.specs["a"].state == "done"
        assert state.specs["a"].total == 100  # carried from earlier beat
        assert state.finished == 2
        assert state.cached == 1
        assert state.cache_hit_rate == 0.5
        assert state.records_per_second == pytest.approx(5100 / 2.5)
        assert state.all_done

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=1.0),
        ])
        with open(board.path, "a") as stream:
            stream.write('{"spec": "b", "state": "meas')  # torn write
        state = read_board(board.path)
        assert state.skipped == 1
        assert list(state.specs) == ["a"]

    def test_eta_progression(self, tmp_path):
        state = BoardState()
        assert state.eta_seconds == 0.0  # nothing known, nothing left
        board = _board_with(tmp_path, [
            dict(spec="a", state="done"),
            dict(spec="b", state="queued"),
        ])
        folded = read_board(board.path)
        # One finished, one pending: ETA extrapolates from elapsed/finished.
        assert folded.eta_seconds is not None


class TestRendering:
    def _state(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="TPF/zEC12-1", state="measuring", done=50, total=200),
            dict(spec="CB84/zEC12-1", state="done",
                 instructions=1000, seconds=1.0),
        ])
        return read_board(board.path)

    def test_status_panel_shows_specs_and_progress(self, tmp_path):
        panel = render_status(self._state(tmp_path), width=100)
        assert "TPF/zEC12-1" in panel
        assert "measuring" in panel
        assert "50/200" in panel
        assert "1/2 done" in panel
        assert "utilization" in panel

    def test_width_is_respected(self, tmp_path):
        panel = render_status(self._state(tmp_path), width=40)
        assert all(len(line) <= 40 for line in panel.splitlines())

    def test_summary_is_one_line(self, tmp_path):
        summary = render_summary(self._state(tmp_path))
        assert "\n" not in summary
        assert "1/2 specs done" in summary


class TestTop:
    def test_once_renders_single_frame(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=0.1),
        ])
        out = io.StringIO()
        assert top(board.path, once=True, stream=out) == 0
        assert "1/1 done" in out.getvalue()

    def test_once_exits_nonzero_when_board_absent(self, tmp_path):
        out = io.StringIO()
        assert top(tmp_path / "never.jsonl", once=True, stream=out) == 1
        assert "no status board" in out.getvalue()

    def test_tail_ends_with_summary_when_all_done(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=0.1),
        ])
        out = io.StringIO()
        assert top(board.path, interval=0.01, stream=out) == 0
        assert "session:" in out.getvalue()


class TestRunManyIntegration:
    def test_run_many_heartbeats_lifecycle(self, tmp_path, monkeypatch):
        """A process-backend session heartbeats queued -> done, then a
        rerun reports the cache hit — the `repro top` data source."""
        board = StatusBoard(tmp_path / "status.jsonl")
        monkeypatch.setenv(STATUS_ENV, str(board.path))
        spec = RunSpec(workload_by_name("TPF"), ZEC12_CONFIG_1, scale=0.04)

        run_many([spec], log=ExecutionLog(), backend="process")
        states = [json.loads(line)["state"]
                  for line in board.path.read_text().splitlines()]
        assert "queued" in states
        assert "done" in states

        run_many([spec], log=ExecutionLog(), backend="process")
        final = read_board(board.path)
        label = f"{spec.workload.name}/{ZEC12_CONFIG_1.name}"
        assert final.specs[label].state == "cached"
