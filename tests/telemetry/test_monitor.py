"""The status board: heartbeats, tolerant folds, rendering, ``repro top``."""

import io
import json

import pytest

from repro.core.config import ZEC12_CONFIG_1
from repro.experiments.pool import ExecutionLog, RunSpec, run_many
from repro.telemetry.monitor import (
    STATUS_ENV,
    BoardState,
    StatusBoard,
    read_board,
    render_status,
    render_summary,
    top,
)
from repro.workloads.catalog import workload_by_name


@pytest.fixture(autouse=True)
def _no_ambient_board(monkeypatch):
    monkeypatch.delenv(STATUS_ENV, raising=False)


def _board_with(tmp_path, beats):
    board = StatusBoard(tmp_path / "status.jsonl")
    for beat in beats:
        board.beat(**beat)
    return board


class TestStatusBoard:
    def test_from_env_is_none_when_unset(self):
        assert StatusBoard.from_env() is None

    def test_activate_round_trips_through_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STATUS_ENV, "")  # keep monkeypatch cleanup
        board = StatusBoard(tmp_path / "s.jsonl")
        board.activate()
        found = StatusBoard.from_env()
        assert found is not None and found.path == board.path

    def test_beat_appends_one_json_line(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="TPF/c1", state="measuring", done=10, total=100),
        ])
        (line,) = board.path.read_text().splitlines()
        record = json.loads(line)
        assert record["spec"] == "TPF/c1"
        assert record["state"] == "measuring"
        assert record["done"] == 10

    def test_beat_swallows_filesystem_errors(self, tmp_path):
        board = StatusBoard(tmp_path / "missing-dir" / "s.jsonl")
        board.beat("x", "queued")  # must not raise


class TestReadBoard:
    def test_missing_file_is_none(self, tmp_path):
        assert read_board(tmp_path / "nope.jsonl") is None

    def test_latest_state_wins_and_totals_carry_forward(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="measuring", done=10, total=100),
            dict(spec="a", state="done", done=100,
                 instructions=5000, seconds=2.0),
            dict(spec="b", state="cached", instructions=100, seconds=0.5),
        ])
        state = read_board(board.path)
        assert state.specs["a"].state == "done"
        assert state.specs["a"].total == 100  # carried from earlier beat
        assert state.finished == 2
        assert state.cached == 1
        assert state.cache_hit_rate == 0.5
        assert state.records_per_second == pytest.approx(5100 / 2.5)
        assert state.all_done

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=1.0),
        ])
        with open(board.path, "a") as stream:
            stream.write('{"spec": "b", "state": "meas')  # torn write
        state = read_board(board.path)
        assert state.skipped == 1
        assert list(state.specs) == ["a"]

    def test_eta_progression(self, tmp_path):
        state = BoardState()
        assert state.eta_seconds is None  # an empty board has no ETA
        board = _board_with(tmp_path, [
            dict(spec="a", state="done"),
            dict(spec="b", state="queued"),
        ])
        folded = read_board(board.path)
        # One finished, one pending: ETA extrapolates from elapsed/finished.
        assert folded.eta_seconds is not None


class TestRendering:
    def _state(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="TPF/zEC12-1", state="measuring", done=50, total=200),
            dict(spec="CB84/zEC12-1", state="done",
                 instructions=1000, seconds=1.0),
        ])
        return read_board(board.path)

    def test_status_panel_shows_specs_and_progress(self, tmp_path):
        panel = render_status(self._state(tmp_path), width=100)
        assert "TPF/zEC12-1" in panel
        assert "measuring" in panel
        assert "50/200" in panel
        assert "1/2 done" in panel
        assert "utilization" in panel

    def test_width_is_respected(self, tmp_path):
        panel = render_status(self._state(tmp_path), width=40)
        assert all(len(line) <= 40 for line in panel.splitlines())

    def test_summary_is_one_line(self, tmp_path):
        summary = render_summary(self._state(tmp_path))
        assert "\n" not in summary
        assert "1/2 specs done" in summary


class TestTop:
    def test_once_renders_single_frame(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=0.1),
        ])
        out = io.StringIO()
        assert top(board.path, once=True, stream=out) == 0
        assert "1/1 done" in out.getvalue()

    def test_once_exits_nonzero_when_board_absent(self, tmp_path):
        out = io.StringIO()
        assert top(tmp_path / "never.jsonl", once=True, stream=out) == 1
        assert "no status board" in out.getvalue()

    def test_tail_ends_with_summary_when_all_done(self, tmp_path):
        board = _board_with(tmp_path, [
            dict(spec="a", state="done", instructions=10, seconds=0.1),
        ])
        out = io.StringIO()
        assert top(board.path, interval=0.01, stream=out) == 0
        assert "session:" in out.getvalue()


class TestRunManyIntegration:
    def test_run_many_heartbeats_lifecycle(self, tmp_path, monkeypatch):
        """A process-backend session heartbeats queued -> done, then a
        rerun reports the cache hit — the `repro top` data source."""
        board = StatusBoard(tmp_path / "status.jsonl")
        monkeypatch.setenv(STATUS_ENV, str(board.path))
        spec = RunSpec(workload_by_name("TPF"), ZEC12_CONFIG_1, scale=0.04)

        run_many([spec], log=ExecutionLog(), backend="process")
        states = [json.loads(line)["state"]
                  for line in board.path.read_text().splitlines()]
        assert "queued" in states
        assert "done" in states

        run_many([spec], log=ExecutionLog(), backend="process")
        final = read_board(board.path)
        label = f"{spec.workload.name}/{ZEC12_CONFIG_1.name}"
        assert final.specs[label].state == "cached"


class TestEtaGuards:
    """Division-by-zero guards in the ETA/utilization math (regressions)."""

    def test_empty_board_has_no_eta(self):
        """A cold board is 'no ETA yet', never 'done in 0s'."""
        assert BoardState().eta_seconds is None

    def test_zero_completed_runs_have_no_eta(self, tmp_path):
        board = _board_with(tmp_path, [
            {"spec": "a", "state": "measuring"},
            {"spec": "b", "state": "queued"},
        ])
        state = read_board(board.path)
        assert state.eta_seconds is None
        assert state.records_per_second == 0.0
        assert state.cache_hit_rate == 0.0

    def test_all_cached_session_is_safe(self, tmp_path):
        """An all-cached board can share one timestamp: elapsed 0."""
        board = _board_with(tmp_path, [
            {"spec": "a", "state": "cached"},
            {"spec": "b", "state": "cached"},
        ])
        state = read_board(board.path)
        assert state.eta_seconds == 0.0
        assert state.cache_hit_rate == 1.0
        assert state.utilization() == 0.0
        # Rendering the degenerate board also never divides by zero.
        assert "a" in render_status(state)
        assert render_summary(state)

    def test_top_once_on_empty_board_file(self, tmp_path, capsys):
        """A board file with zero parseable lines renders, not crashes."""
        path = tmp_path / "status.jsonl"
        path.write_text("not json\n")
        assert top(path, once=True, stream=io.StringIO()) == 0


class TestShutdownSweep:
    """``sweep_incomplete``/``shutdown_sweep``: no stale board entries."""

    def test_sweep_marks_only_incomplete_labels(self, tmp_path):
        from repro.telemetry.monitor import sweep_incomplete

        board = _board_with(tmp_path, [
            {"spec": "done-one", "state": "done"},
            {"spec": "stuck", "state": "measuring"},
        ])
        swept = sweep_incomplete(board, ["done-one", "stuck", "never-ran"],
                                 reason="test")
        assert swept == 2
        state = read_board(board.path)
        assert state.specs["done-one"].state == "done"
        assert state.specs["stuck"].state == "cancelled"
        assert state.specs["never-ran"].state == "cancelled"

    def test_sweep_is_idempotent(self, tmp_path):
        from repro.telemetry.monitor import sweep_incomplete

        board = _board_with(tmp_path, [{"spec": "x", "state": "warming"}])
        assert sweep_incomplete(board, ["x"]) == 1
        assert sweep_incomplete(board, ["x"]) == 0

    def test_context_sweeps_failed_on_exception(self, tmp_path):
        from repro.telemetry.monitor import shutdown_sweep

        board = _board_with(tmp_path, [{"spec": "x", "state": "measuring"}])
        with pytest.raises(RuntimeError):
            with shutdown_sweep(board, ["x", "y"]):
                raise RuntimeError("worker exploded")
        state = read_board(board.path)
        assert state.specs["x"].state == "failed"
        assert state.specs["y"].state == "failed"
        assert "worker exploded" in state.specs["x"].reason

    def test_context_sweeps_cancelled_on_interrupt(self, tmp_path):
        from repro.telemetry.monitor import shutdown_sweep

        board = _board_with(tmp_path, [{"spec": "x", "state": "queued"}])
        with pytest.raises(KeyboardInterrupt):
            with shutdown_sweep(board, ["x"]):
                raise KeyboardInterrupt
        assert read_board(board.path).specs["x"].state == "cancelled"

    def test_context_restores_signal_handlers(self, tmp_path):
        import signal

        from repro.telemetry.monitor import shutdown_sweep

        board = _board_with(tmp_path, [{"spec": "x", "state": "queued"}])
        before = signal.getsignal(signal.SIGTERM)
        with shutdown_sweep(board, ["x"]):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_sigterm_mid_block_sweeps_and_exits(self, tmp_path):
        """A real signal delivered inside the guarded block cancels."""
        import os
        import signal

        from repro.telemetry.monitor import shutdown_sweep

        board = _board_with(tmp_path, [{"spec": "x", "state": "measuring"}])
        with pytest.raises(SystemExit) as excinfo:
            with shutdown_sweep(board, ["x"]):
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM
        state = read_board(board.path)
        assert state.specs["x"].state == "cancelled"
        assert "SIGTERM" in state.specs["x"].reason

    def test_clean_exit_writes_nothing(self, tmp_path):
        from repro.telemetry.monitor import shutdown_sweep

        board = _board_with(tmp_path, [{"spec": "x", "state": "done"}])
        lines = board.path.read_text().count("\n")
        with shutdown_sweep(board, ["x"]):
            pass
        assert board.path.read_text().count("\n") == lines

    def test_none_board_is_a_no_op_guard(self):
        from repro.telemetry.monitor import shutdown_sweep

        with shutdown_sweep(None, ["x"]):
            pass


class TestRunManyShutdownSweep:
    def test_killed_worker_leaves_no_stale_entries(self, tmp_path,
                                                   monkeypatch):
        """A worker dying mid-batch sweeps its board entries to failed."""
        import repro.experiments.pool as pool_module

        board = StatusBoard(tmp_path / "status.jsonl")
        monkeypatch.setenv(STATUS_ENV, str(board.path))
        spec = RunSpec(workload_by_name("TPF"), ZEC12_CONFIG_1, scale=0.04)

        def _dying(_item):
            raise SystemExit(137)  # the shape a killed worker surfaces as

        monkeypatch.setattr(pool_module, "_timed_simulate", _dying)
        with pytest.raises(SystemExit):
            run_many([spec], log=ExecutionLog(), backend="serial")
        state = read_board(board.path)
        label = f"{spec.workload.name}/{ZEC12_CONFIG_1.name}"
        assert state.specs[label].state == "cancelled"
        assert state.all_done
