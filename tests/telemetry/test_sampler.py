"""Sampler snapshots, rolling windows, CSV export, and the ASCII timeline."""

import csv

import pytest

from repro.core.config import PredictorConfig
from repro.engine.simulator import Simulator
from repro.telemetry import COLUMNS, Sampler, Telemetry, render_timeline, sparkline
from repro.telemetry.sampler import _downsample
from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def sampled_run(interval=16, iterations=200):
    sampler = Sampler(interval)
    telemetry = Telemetry(sampler=sampler)
    simulator = Simulator(config=small_config(), telemetry=telemetry)
    simulator.run(loop_trace(iterations))
    return sampler, simulator


class TestSampling:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Sampler(0)

    def test_samples_cover_the_run(self):
        sampler, simulator = sampled_run()
        assert len(sampler) >= 2
        cycles = sampler.columns["cycle"]
        assert cycles[0] == 0.0  # attach takes the cycle-0 baseline
        assert cycles == sorted(cycles)
        assert cycles[-1] == simulator.counters.cycles  # finish() sample

    def test_every_column_has_every_sample(self):
        sampler, _ = sampled_run()
        lengths = {name: len(sampler.columns[name]) for name in COLUMNS}
        assert set(lengths.values()) == {len(sampler)}

    def test_rates_are_rolling_not_cumulative(self):
        sampler, _ = sampled_run()
        good = sampler.columns["good_rate"]
        bad = sampler.columns["bad_rate"]
        for g, b in zip(good, bad):
            assert 0.0 <= g <= 1.0 and 0.0 <= b <= 1.0
            assert g == 0.0 or b == 0.0 or g + b == pytest.approx(1.0)
        # A warmed loop predicts well: good-dominated windows outweigh bad
        # ones, which cumulative averaging would smear toward the start.
        assert sum(good) > sum(bad)

    def test_occupancy_grows_then_holds(self):
        sampler, _ = sampled_run()
        occupancy = sampler.columns["btb1_occupancy"]
        assert occupancy[0] == 0.0
        assert max(occupancy) > 0.0
        assert all(0.0 <= value <= 1.0 for value in occupancy)


class TestExport:
    def test_rows_zip_columns_in_order(self):
        sampler, _ = sampled_run()
        rows = sampler.rows()
        assert len(rows) == len(sampler)
        assert rows[0][0] == sampler.columns["cycle"][0]

    def test_write_csv_round_trips(self, tmp_path):
        sampler, _ = sampled_run()
        path = tmp_path / "timeline.csv"
        count = sampler.write_csv(path)
        with path.open() as stream:
            reader = csv.reader(stream)
            header = next(reader)
            body = list(reader)
        assert header == list(COLUMNS)
        assert len(body) == count == len(sampler)
        assert float(body[0][0]) == 0.0


class TestRendering:
    def test_downsample_preserves_short_series(self):
        assert _downsample([1.0, 2.0], 8) == [1.0, 2.0]

    def test_downsample_buckets_long_series(self):
        values = list(map(float, range(100)))
        points = _downsample(values, 10)
        assert len(points) == 10
        assert points == sorted(points)

    def test_sparkline_spans_glyph_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_render_timeline_lists_every_column(self):
        sampler, _ = sampled_run()
        text = render_timeline(sampler, title="demo")
        assert text.startswith("demo")
        for name in COLUMNS:
            if name != "cycle":
                assert name in text

    def test_render_timeline_empty_sampler(self):
        assert "(no samples)" in render_timeline(Sampler(64))
