"""Telemetry hub wiring and the end-to-end instrumented run."""

from repro.core.config import PredictorConfig
from repro.engine.simulator import Simulator, simulate
from repro.telemetry import EventKind, Telemetry, validate_events
from tests.conftest import branch, loop_trace, straightline


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def cold_misses_trace():
    """Spread branches over many 4 KB blocks to exercise the preload path."""
    records = []
    base = 0x4000_0000
    for block in range(12):
        start = base + block * 0x1000
        records.extend(straightline(start, 30))
        # Jump to the next block: taken branch, cold everything.
        records.append(branch(start + 30 * 4, taken=True,
                              target=base + (block + 1) * 0x1000))
    return records


class TestWiring:
    def test_attach_plants_telemetry_everywhere(self):
        telemetry = Telemetry.full()
        simulator = Simulator(config=small_config(), telemetry=telemetry)
        assert simulator.telemetry is telemetry
        assert simulator.search.telemetry is telemetry
        assert simulator.hierarchy.btb1.telemetry is telemetry
        assert simulator.hierarchy.btbp.telemetry is telemetry
        assert simulator.btb2.telemetry is telemetry
        assert simulator.preload.telemetry is telemetry
        assert simulator.preload.transfer.telemetry is telemetry

    def test_attach_tolerates_disabled_components(self):
        simulator = Simulator(
            config=small_config(btbp_enabled=False, btb2_enabled=False),
            telemetry=Telemetry.full(),
        )
        assert simulator.hierarchy.btbp is None
        assert simulator.btb2 is None
        assert simulator.preload is None

    def test_pillars_are_independent(self):
        hub = Telemetry()
        assert hub.tracer is None and hub.sampler is None
        assert hub.profiler is None
        full = Telemetry.full(sample_interval=64)
        assert full.sampler.interval == 64


class TestInstrumentedRun:
    def test_events_cover_the_lifecycle_and_validate(self):
        telemetry = Telemetry.full(sample_interval=64)
        simulate(cold_misses_trace(), config=small_config(),
                 telemetry=telemetry)
        events = telemetry.tracer.events
        assert validate_events(events) == []
        kinds = {event["kind"] for event in events}
        expected = {
            EventKind.FETCH.value,
            EventKind.SURPRISE.value,
            EventKind.OUTCOME.value,
            EventKind.MISS_PERCEIVED.value,
            EventKind.TRACKER_ALLOCATE.value,
            EventKind.TRACKER_ARM.value,
            EventKind.TRACKER_EXPIRE.value,
            EventKind.BTB2_SEARCH_START.value,
            EventKind.BTB2_ROW.value,
            EventKind.TRANSFER_BATCH.value,
            EventKind.INSTALL.value,
            EventKind.RESTEER.value,
        }
        assert expected <= kinds

    def test_event_cycles_are_monotonic_per_component_clock(self):
        telemetry = Telemetry.full()
        simulate(loop_trace(100), config=small_config(), telemetry=telemetry)
        fetches = telemetry.tracer.of_kind(EventKind.FETCH)
        cycles = [event["cycle"] for event in fetches]
        assert cycles == sorted(cycles)

    def test_profiler_totals_match_counters(self):
        telemetry = Telemetry.full()
        result = simulate(loop_trace(100), config=small_config(),
                          telemetry=telemetry)
        assert (telemetry.profiler.total_executions
                == result.counters.branches)

    def test_outcome_events_match_counters(self):
        telemetry = Telemetry.full()
        result = simulate(loop_trace(100), config=small_config(),
                          telemetry=telemetry)
        outcomes = telemetry.tracer.of_kind(EventKind.OUTCOME)
        assert len(outcomes) == result.counters.branches
        bad = [event for event in outcomes if event["penalty"] > 0]
        assert len(bad) == result.counters.bad_outcomes

    def test_lookup_events_use_prediction_levels(self):
        telemetry = Telemetry.full()
        simulate(loop_trace(100), config=small_config(), telemetry=telemetry)
        lookups = telemetry.tracer.of_kind(EventKind.LOOKUP)
        assert lookups
        assert {event["level"] for event in lookups} <= {"btb1", "btbp"}
