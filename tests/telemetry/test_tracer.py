"""Tracer buffering, streaming, and the Chrome trace_event export."""

import io
import json

from repro.telemetry import EventKind, Tracer, validate_jsonl


def preload_burst(tracer: Tracer) -> None:
    """A realistic tracker lifecycle: allocate -> arm -> batch -> expire."""
    tracer.emit(10.0, EventKind.TRACKER_ALLOCATE.value,
                tracker=0, block=0x1000, state="partial")
    tracer.emit(10.0, EventKind.TRACKER_ARM.value,
                tracker=0, block=0x1000, mode="partial", rows=4)
    tracer.emit(12.0, EventKind.BTB2_SEARCH_START.value,
                tracker=0, sector=2, rows=4, priority=0)
    tracer.emit(25.0, EventKind.BTB2_ROW.value, row=0x1040, hits=2)
    tracer.emit(29.0, EventKind.TRANSFER_BATCH.value,
                tracker=0, block=0x1000, rows=4, entries=2)
    tracer.emit(29.0, EventKind.TRACKER_EXPIRE.value,
                tracker=0, block=0x1000, reason="drained")


class TestBuffering:
    def test_emit_buffers_in_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "fetch", address=0x10, result="hit")
        tracer.emit(2.0, "fetch", address=0x20, result="miss")
        assert len(tracer) == 2
        assert [event["address"] for event in tracer.events] == [0x10, 0x20]

    def test_limit_drops_and_counts(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.emit(float(i), "fetch", address=i, result="hit")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_stream_receives_every_event_despite_limit(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, limit=1)
        for i in range(3):
            tracer.emit(float(i), "fetch", address=i, result="hit")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert validate_jsonl(lines) == []

    def test_of_kind_filters(self):
        tracer = Tracer()
        preload_burst(tracer)
        assert len(tracer.of_kind(EventKind.BTB2_ROW)) == 1
        assert len(tracer.of_kind("tracker_arm")) == 1

    def test_write_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        preload_burst(tracer)
        path = tmp_path / "events.jsonl"
        count = tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer)
        assert validate_jsonl(lines) == []


class TestChromeTrace:
    def test_spans_are_balanced(self):
        tracer = Tracer()
        preload_burst(tracer)
        trace = tracer.to_chrome_trace()["traceEvents"]
        depth = {}
        for event in trace:
            if event["ph"] == "B":
                depth[event["tid"]] = depth.get(event["tid"], 0) + 1
            elif event["ph"] == "E":
                depth[event["tid"]] = depth.get(event["tid"], 0) - 1
                assert depth[event["tid"]] >= 0
        assert all(value == 0 for value in depth.values())

    def test_burst_renders_nested_preload_and_search_spans(self):
        tracer = Tracer()
        preload_burst(tracer)
        trace = tracer.to_chrome_trace()["traceEvents"]
        begins = [event["name"] for event in trace if event["ph"] == "B"]
        assert begins == ["preload", "search:partial"]

    def test_open_spans_closed_at_last_timestamp(self):
        tracer = Tracer()
        tracer.emit(5.0, EventKind.TRACKER_ALLOCATE.value,
                    tracker=1, block=0x2000, state="partial")
        tracer.emit(9.0, EventKind.FETCH.value, address=0x30, result="hit")
        trace = tracer.to_chrome_trace()["traceEvents"]
        ends = [event for event in trace if event["ph"] == "E"]
        assert ends and all(event["ts"] == 9.0 for event in ends)

    def test_reallocation_closes_previous_burst(self):
        tracer = Tracer()
        tracer.emit(1.0, EventKind.TRACKER_ALLOCATE.value,
                    tracker=0, block=0x1000, state="icache_only")
        tracer.emit(8.0, EventKind.TRACKER_ALLOCATE.value,
                    tracker=0, block=0x2000, state="partial")
        trace = tracer.to_chrome_trace()["traceEvents"]
        phases = [(event["ph"], event["ts"]) for event in trace
                  if event["ph"] in "BE"]
        assert phases[:2] == [("B", 1.0), ("E", 8.0)]

    def test_metadata_names_core_and_trackers(self):
        tracer = Tracer()
        preload_burst(tracer)
        trace = tracer.to_chrome_trace(process_name="demo")["traceEvents"]
        meta = [event for event in trace if event["ph"] == "M"]
        names = {event["args"]["name"] for event in meta}
        assert {"demo", "core pipeline", "tracker 0"} <= names

    def test_instants_hexify_addresses(self):
        tracer = Tracer()
        tracer.emit(3.0, EventKind.RESTEER.value, address=0x1234,
                    cause="mispredict")
        trace = tracer.to_chrome_trace()["traceEvents"]
        instant = next(event for event in trace if event["ph"] == "i")
        assert instant["args"]["address"] == "0x1234"

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        preload_burst(tracer)
        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert count == len(payload["traceEvents"])
