"""Telemetry off-path guarantees.

Two properties pin the "zero-cost when off" contract:

* every hook site in the instrumented modules is a bare attribute guard
  (``if self.telemetry is not None``) — no closures, wrappers, or partials
  are allocated per event on the hot path, the same pattern the auditor
  uses;
* a run with telemetry fully enabled produces byte-identical scientific
  results to a run with telemetry off.
"""

import ast
from pathlib import Path

from repro.core.config import PredictorConfig
from repro.engine.simulator import Simulator, simulate
from repro.telemetry import Telemetry
from tests.conftest import loop_trace

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Every module that carries telemetry hook sites.
INSTRUMENTED = [
    SRC / "engine" / "simulator.py",
    SRC / "core" / "search.py",
    SRC / "preload" / "engine.py",
    SRC / "preload" / "transfer.py",
    SRC / "btb" / "storage.py",
]


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def _is_self_telemetry(node: ast.AST) -> bool:
    """True for the expression ``self.telemetry``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "telemetry"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_guard(test: ast.AST) -> bool:
    """True for a test containing ``self.telemetry is not None``."""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and _is_self_telemetry(node.left)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.IsNot)
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            return True
    return False


def _hook_calls_with_guards(path: Path):
    """Yield (lineno, guarded) for every ``self.telemetry.<hook>(...)``."""
    tree = ast.parse(path.read_text())
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _is_self_telemetry(node.func.value)
        ):
            continue
        guarded = False
        cursor = node
        while cursor in parents:
            cursor = parents[cursor]
            if isinstance(cursor, ast.If) and _is_guard(cursor.test):
                guarded = True
                break
        yield node.lineno, guarded


#: Distributed-observability modules: file -> the local observer names
#: whose every method call must sit under an ``if <name> is not None``.
DISTRIBUTED_INSTRUMENTED = {
    SRC / "sampling" / "parallel.py": ("telemetry", "board", "session"),
    SRC / "experiments" / "common.py": ("telemetry", "board", "session"),
    SRC / "experiments" / "pool.py": ("board",),
}


def _root_name(node: ast.AST) -> str | None:
    """The bare name at the root of an attribute chain, if any."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_name_guard(test: ast.AST, name: str) -> bool:
    """True for a test containing ``<name> is not None``."""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and isinstance(node.left, ast.Name)
            and node.left.id == name
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.IsNot)
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            return True
    return False


def _local_hook_calls(path: Path, names: tuple[str, ...]):
    """Yield (lineno, name, guarded) per call on a tracked local observer."""
    tree = ast.parse(path.read_text())
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        root = _root_name(node.func.value)
        if root not in names:
            continue
        guarded = False
        cursor = node
        while cursor in parents:
            cursor = parents[cursor]
            if isinstance(cursor, ast.If) and _is_name_guard(cursor.test, root):
                guarded = True
                break
        yield node.lineno, root, guarded


class TestHookGuards:
    def test_every_hook_site_is_attribute_guarded(self):
        total = 0
        for path in INSTRUMENTED:
            for lineno, guarded in _hook_calls_with_guards(path):
                total += 1
                assert guarded, (
                    f"{path.name}:{lineno} calls self.telemetry.* outside an "
                    f"'if self.telemetry is not None' guard — the off path "
                    f"must stay a single attribute test"
                )
        # The wiring spans the whole lifecycle; a low count means hook
        # sites were removed (or the scan broke) — both worth failing on.
        assert total >= 15

    def test_every_distributed_hook_site_is_guarded(self):
        """Relay/status hook sites obey the same bare-guard contract.

        The distributed layer threads its observers as locals rather than
        attributes — ``telemetry`` (the relayed hub), ``board`` (the
        status heartbeat), ``session`` (the worker shard) — so the scan
        here checks every call on those bare names sits under an
        ``if <name> is not None`` guard.  ``relay`` is excluded: it is
        touched once per run at orchestration boundaries, never on a
        per-record path.
        """
        total = 0
        for path, names in DISTRIBUTED_INSTRUMENTED.items():
            for lineno, name, guarded in _local_hook_calls(path, names):
                total += 1
                assert guarded, (
                    f"{path.name}:{lineno} calls {name}.* outside an "
                    f"'if {name} is not None' guard — the off path must "
                    f"stay a single None test"
                )
        # Heartbeats and relay attach/close span the whole fan-out
        # lifecycle; a shrinking count means hook sites disappeared.
        assert total >= 20

    def test_default_telemetry_is_none_everywhere(self):
        simulator = Simulator(config=small_config())
        assert simulator.telemetry is None
        assert simulator.search.telemetry is None
        assert simulator.hierarchy.btb1.telemetry is None
        assert simulator.hierarchy.btbp.telemetry is None
        assert simulator.btb2.telemetry is None
        assert simulator.preload.telemetry is None
        assert simulator.preload.transfer.telemetry is None


class TestResultParity:
    def test_results_byte_identical_with_telemetry_on_vs_off(self):
        trace = loop_trace(150)
        plain = simulate(trace, config=small_config())
        traced = simulate(trace, config=small_config(),
                          telemetry=Telemetry.full(sample_interval=32))
        assert repr(traced) == repr(plain)
        assert traced.counters.cycles == plain.counters.cycles
        assert traced.counters.outcomes == plain.counters.outcomes
        assert (traced.counters.penalty_cycles
                == plain.counters.penalty_cycles)

    def test_parity_holds_with_preload_disabled(self):
        trace = loop_trace(60)
        config = small_config(btb2_enabled=False)
        plain = simulate(trace, config=config)
        traced = simulate(trace, config=config, telemetry=Telemetry.full())
        assert repr(traced) == repr(plain)
