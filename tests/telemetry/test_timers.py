"""Host-side wall-time phase timers."""

from repro.telemetry import PhaseTimers, phase_timer


class TestPhaseTimers:
    def test_phase_accumulates_wall_time(self):
        timers = PhaseTimers()
        with timers.phase("alpha"):
            pass
        with timers.phase("alpha"):
            pass
        with timers.phase("beta"):
            pass
        assert set(timers.phases) == {"alpha", "beta"}
        assert timers.phases["alpha"] >= 0.0
        assert timers.phases["beta"] >= 0.0

    def test_phase_records_on_exception(self):
        timers = PhaseTimers()
        try:
            with timers.phase("boom"):
                raise RuntimeError("expected")
        except RuntimeError:
            pass
        assert "boom" in timers.phases

    def test_merge_into_replays_every_phase(self):
        timers = PhaseTimers()
        with timers.phase("alpha"):
            pass
        seen = {}
        timers.merge_into(lambda name, seconds: seen.__setitem__(name, seconds))
        assert seen == timers.phases


class TestPhaseTimer:
    def test_one_shot_reports_to_record(self):
        seen = {}

        def record(name, seconds):
            seen[name] = seen.get(name, 0.0) + seconds

        with phase_timer("tables", record):
            pass
        assert "tables" in seen
        assert seen["tables"] >= 0.0

    def test_one_shot_reports_on_exception(self):
        seen = {}
        try:
            with phase_timer("boom", lambda n, s: seen.__setitem__(n, s)):
                raise ValueError("expected")
        except ValueError:
            pass
        assert "boom" in seen
