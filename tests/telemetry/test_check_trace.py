"""Tests for the telemetry artifact checker script (CI smoke backend)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_trace  # noqa: E402  (path set up above)

from repro.core.config import PredictorConfig
from repro.engine.simulator import simulate
from repro.telemetry import Telemetry
from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def _traced_artifacts(tmp_path):
    telemetry = Telemetry.full(sample_interval=64)
    simulate(loop_trace(100), config=small_config(), telemetry=telemetry)
    jsonl = tmp_path / "events.jsonl"
    chrome = tmp_path / "trace.json"
    telemetry.tracer.write_jsonl(jsonl)
    telemetry.tracer.write_chrome_trace(chrome)
    return jsonl, chrome


class TestRealArtifacts:
    def test_clean_run_passes_both_checks(self, tmp_path):
        jsonl, chrome = _traced_artifacts(tmp_path)
        assert check_trace.check_jsonl_file(jsonl) == []
        assert check_trace.check_chrome_file(chrome) == []
        assert check_trace.main([str(jsonl), "--chrome", str(chrome)]) == 0


class TestJsonlProblems:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert check_trace.check_jsonl_file(path) == ["no events (empty file)"]

    def test_bad_event_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycle": 1.0, "kind": "nope"}\nnot json\n')
        problems = check_trace.check_jsonl_file(path)
        assert any("line 1" in p and "unknown event kind" in p
                   for p in problems)
        assert any("line 2" in p and "not JSON" in p for p in problems)

    def test_missing_file_is_failure_exit(self, tmp_path):
        assert check_trace.main([str(tmp_path / "gone.jsonl")]) == 1


class TestChromeProblems:
    def test_missing_trace_events_key(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"other": []}))
        assert check_trace.check_chrome_file(path) == [
            "missing top-level 'traceEvents' object"
        ]

    def test_unbalanced_spans_detected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "preload"},
        ]}))
        problems = check_trace.check_chrome_file(path)
        assert any("unclosed span" in p for p in problems)

    def test_end_without_begin_detected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "E", "pid": 1, "tid": 1, "ts": 5},
        ]}))
        problems = check_trace.check_chrome_file(path)
        assert any("E without matching B" in p for p in problems)

    def test_unknown_phase_detected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "Z", "pid": 1, "ts": 0, "name": "x"},
        ]}))
        problems = check_trace.check_chrome_file(path)
        assert any("unknown phase" in p for p in problems)


def _merged_trace(metadata_overrides=None, events=None):
    """A minimal well-formed aggregated trace payload."""
    metadata = {
        "relay_schema": 1,
        "run": "t",
        "workers": ["orchestrator", "w0"],
        "shards": [
            {"file": "shard-t-orchestrator-s0000.jsonl",
             "worker": "orchestrator", "slice": 0, "pid": 0, "events": 1},
            {"file": "shard-t-w0-s0000.jsonl",
             "worker": "w0", "slice": 0, "pid": 1, "events": 2},
        ],
        "missing": [],
        "skipped": [],
    }
    metadata.update(metadata_overrides or {})
    return {
        "traceEvents": events if events is not None else [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "orchestrator"}},
            {"ph": "i", "pid": 0, "tid": 0, "ts": 0, "name": "interval"},
            {"ph": "B", "pid": 1, "tid": 0, "ts": 1, "name": "preload"},
            {"ph": "E", "pid": 1, "tid": 0, "ts": 4},
        ],
        "metadata": metadata,
    }


class TestMergedProblems:
    def _check(self, tmp_path, payload):
        path = tmp_path / "merged.json"
        path.write_text(json.dumps(payload))
        return check_trace.check_merged_file(path)

    def test_well_formed_merged_trace_passes(self, tmp_path):
        assert self._check(tmp_path, _merged_trace()) == []

    def test_metadata_block_required(self, tmp_path):
        payload = _merged_trace()
        del payload["metadata"]
        problems = self._check(tmp_path, payload)
        assert problems == ["merged trace missing top-level 'metadata' object"]

    def test_wrong_relay_schema_detected(self, tmp_path):
        problems = self._check(
            tmp_path, _merged_trace({"relay_schema": 99}))
        assert any("relay_schema" in p for p in problems)

    def test_missing_shard_fails(self, tmp_path):
        problems = self._check(
            tmp_path, _merged_trace({"missing": ["shard-t-w1-s0001.jsonl"]}))
        assert any("never appeared" in p for p in problems)

    def test_backwards_lane_time_detected(self, tmp_path):
        payload = _merged_trace(events=[
            {"ph": "B", "pid": 1, "tid": 0, "ts": 10, "name": "preload"},
            {"ph": "E", "pid": 1, "tid": 0, "ts": 3},
        ])
        problems = self._check(tmp_path, payload)
        assert any("time went backwards" in p for p in problems)

    def test_unaccounted_shard_lane_detected(self, tmp_path):
        payload = _merged_trace()
        payload["metadata"]["shards"][1]["pid"] = 7
        problems = self._check(tmp_path, payload)
        assert any("lane 7 is empty" in p for p in problems)

    def test_main_accepts_merged_and_metrics(self, tmp_path):
        merged = tmp_path / "merged.json"
        merged.write_text(json.dumps(_merged_trace()))
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({"metrics_schema": 1, "metrics": []}))
        assert check_trace.main(["--merged", str(merged),
                                 "--metrics", str(metrics)]) == 0
        metrics.write_text(json.dumps({"metrics_schema": 2, "metrics": []}))
        assert check_trace.main(["--metrics", str(metrics)]) == 1
