"""BranchProfiler attribution, ranking, and rendering."""

from repro.core.events import OutcomeKind
from repro.telemetry import BranchProfiler


def fed_profiler():
    profiler = BranchProfiler()
    # Branch A: hot and expensive.
    for _ in range(10):
        profiler.record(0x100, OutcomeKind.GOOD_DYNAMIC, 0.0, taken=True)
    for _ in range(4):
        profiler.record(0x100, OutcomeKind.SURPRISE_CAPACITY, 20.0, taken=True)
    # Branch B: cheap.
    profiler.record(0x200, OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN, 6.0,
                    taken=True)
    # Branch C: never bad.
    profiler.record(0x300, OutcomeKind.GOOD_SURPRISE, 0.0, taken=False)
    return profiler


class TestRecording:
    def test_totals_match_feeds(self):
        profiler = fed_profiler()
        assert profiler.total_executions == 16
        assert profiler.total_penalty_cycles == 86.0
        assert len(profiler.profiles) == 3

    def test_per_branch_aggregation(self):
        profile = fed_profiler().profiles[0x100]
        assert profile.executions == 14
        assert profile.taken == 14
        assert profile.penalty_cycles == 80.0
        assert profile.bad == 4
        assert profile.bad_fraction == 4 / 14
        assert profile.dominant_outcome is OutcomeKind.SURPRISE_CAPACITY

    def test_never_bad_branch_has_no_dominant_outcome(self):
        profile = fed_profiler().profiles[0x300]
        assert profile.bad == 0
        assert profile.bad_fraction == 0.0
        assert profile.dominant_outcome is None

    def test_empty_profile_fractions_are_zero(self):
        profiler = BranchProfiler()
        assert profiler.total_executions == 0
        assert profiler.total_penalty_cycles == 0.0
        assert profiler.top() == []


class TestRanking:
    def test_top_ranks_by_penalty(self):
        top = fed_profiler().top(2)
        assert [profile.address for profile in top] == [0x100, 0x200]

    def test_ties_break_by_address(self):
        profiler = BranchProfiler()
        profiler.record(0x500, OutcomeKind.MISPREDICT_WRONG_TARGET, 5.0, taken=True)
        profiler.record(0x400, OutcomeKind.MISPREDICT_WRONG_TARGET, 5.0, taken=True)
        assert [p.address for p in profiler.top()] == [0x400, 0x500]

    def test_top_zero_and_negative(self):
        profiler = fed_profiler()
        assert profiler.top(0) == []
        assert profiler.top(-3) == []


class TestRendering:
    def test_render_shows_top_branches_and_shares(self):
        text = fed_profiler().render(2, title="worst offenders")
        assert text.startswith("worst offenders")
        assert "0x100" in text and "0x200" in text
        assert "0x300" not in text  # beyond k
        assert OutcomeKind.SURPRISE_CAPACITY.value in text

    def test_render_empty_profiler(self):
        text = BranchProfiler().render(5)
        assert "0 static branches" in text
