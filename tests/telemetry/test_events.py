"""Event schema: taxonomy completeness and validator behaviour."""

import json

from repro.telemetry import EVENT_SCHEMA, validate_event, validate_events, validate_jsonl
from repro.telemetry.events import COMMON_FIELDS, EventKind


class TestTaxonomy:
    def test_every_kind_has_a_schema(self):
        assert set(EVENT_SCHEMA) == {kind.value for kind in EventKind}

    def test_common_fields_are_cycle_and_kind(self):
        assert set(COMMON_FIELDS) == {"cycle", "kind"}


class TestValidateEvent:
    def test_valid_event_passes(self):
        event = {"cycle": 12.0, "kind": "fetch", "address": 0x100,
                 "result": "hit"}
        assert validate_event(event) == []

    def test_int_cycle_accepted_as_float(self):
        event = {"cycle": 12, "kind": "fetch", "address": 0x100,
                 "result": "miss"}
        assert validate_event(event) == []

    def test_missing_payload_field_reported(self):
        event = {"cycle": 1.0, "kind": "fetch", "address": 0x100}
        problems = validate_event(event)
        assert any("result" in problem for problem in problems)

    def test_unknown_kind_reported(self):
        problems = validate_event({"cycle": 1.0, "kind": "nonsense"})
        assert any("unknown event kind" in problem for problem in problems)

    def test_wrong_type_reported(self):
        event = {"cycle": 1.0, "kind": "fetch", "address": "0x100",
                 "result": "hit"}
        problems = validate_event(event)
        assert any("address" in problem for problem in problems)

    def test_bool_does_not_satisfy_int(self):
        event = {"cycle": 1.0, "kind": "fetch", "address": True,
                 "result": "hit"}
        assert validate_event(event)

    def test_bool_field_rejects_int(self):
        event = {"cycle": 1.0, "kind": "lookup", "address": 1, "level": "btb1",
                 "taken": 1, "used_pht": False, "used_ctb": False}
        problems = validate_event(event)
        assert any("taken" in problem for problem in problems)

    def test_extra_fields_tolerated(self):
        event = {"cycle": 1.0, "kind": "fetch", "address": 1, "result": "hit",
                 "experimental": "yes"}
        assert validate_event(event) == []

    def test_non_object_reported(self):
        assert validate_event([1, 2, 3])


class TestValidateStreams:
    def test_validate_events_prefixes_index(self):
        events = [
            {"cycle": 1.0, "kind": "fetch", "address": 1, "result": "hit"},
            {"cycle": 2.0, "kind": "fetch"},
        ]
        problems = validate_events(events)
        assert problems and all(p.startswith("event 1:") for p in problems)

    def test_validate_jsonl_reports_bad_json_and_bad_events(self):
        lines = [
            json.dumps({"cycle": 1.0, "kind": "fetch", "address": 1,
                        "result": "hit"}),
            "not json at all {",
            "",  # blank lines skipped
            json.dumps({"cycle": 3.0, "kind": "resteer", "address": 4}),
        ]
        problems = validate_jsonl(lines)
        assert any(p.startswith("line 2: not JSON") for p in problems)
        assert any(p.startswith("line 4:") and "cause" in p for p in problems)

    def test_validate_jsonl_clean_stream(self):
        lines = [json.dumps({"cycle": float(i), "kind": "fetch",
                             "address": i, "result": "miss"})
                 for i in range(5)]
        assert validate_jsonl(lines) == []
