"""Tests for the set-associative cache substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.caches.setassoc import CacheGeometry, SetAssociativeCache


def make_cache(sets=4, ways=2, line=64):
    return SetAssociativeCache(CacheGeometry(sets, ways, line))


class TestGeometry:
    def test_capacity(self):
        assert CacheGeometry(64, 4, 256).capacity_bytes == 64 * 1024

    def test_index_wraps(self):
        geometry = CacheGeometry(4, 1, 64)
        assert geometry.index(0) == geometry.index(4 * 64)

    def test_tag_distinguishes_aliases(self):
        geometry = CacheGeometry(4, 1, 64)
        assert geometry.tag(0) != geometry.tag(4 * 64)

    @pytest.mark.parametrize("sets", (0, 3, -4))
    def test_bad_sets_rejected(self, sets):
        with pytest.raises(ValueError):
            CacheGeometry(sets, 2, 64)

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(4, 2, 48)

    def test_bad_ways_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(4, 0, 64)


class TestAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        assert not cache.access(0x100)
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.access(0x100)
        assert cache.hits == 1

    def test_same_line_hits(self):
        cache = make_cache(line=64)
        cache.access(0x100)
        assert cache.access(0x13F)

    def test_lru_eviction_order(self):
        cache = make_cache(sets=1, ways=2, line=64)
        cache.access(0x000)  # A
        cache.access(0x040)  # B -> set is [B, A]
        cache.access(0x000)  # touch A -> [A, B]
        cache.access(0x080)  # C evicts B -> [C, A]
        assert cache.contains(0x000)
        assert not cache.contains(0x040)
        assert cache.contains(0x080)

    def test_contains_does_not_count(self):
        cache = make_cache()
        cache.contains(0x100)
        assert cache.accesses == 0

    def test_install_does_not_count(self):
        cache = make_cache()
        cache.install(0x100)
        assert cache.accesses == 0
        assert cache.contains(0x100)

    def test_install_promotes_existing(self):
        cache = make_cache(sets=1, ways=2, line=64)
        cache.access(0x000)
        cache.access(0x040)  # [B, A]
        cache.install(0x000)  # promote A -> [A, B]
        cache.access(0x080)  # evicts B
        assert cache.contains(0x000)

    def test_flush_preserves_counters(self):
        cache = make_cache()
        cache.access(0x100)
        cache.flush()
        assert not cache.contains(0x100)
        assert cache.misses == 1

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0x100)
        cache.access(0x100)
        assert cache.miss_rate == 0.5


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = make_cache(sets=2, ways=2, line=64)
        for address in accesses:
            cache.access(address)
        total = sum(len(ways) for ways in cache._sets)
        assert total <= cache.geometry.sets * cache.geometry.ways

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=300))
    def test_most_recent_access_always_present(self, accesses):
        cache = make_cache(sets=2, ways=2, line=64)
        for address in accesses:
            cache.access(address)
            assert cache.contains(address)
