"""Tests for the L1I model with miss tracking and prefetch."""

from repro.caches.icache import ICache


def make_icache(**kwargs):
    defaults = dict(capacity_bytes=4096, ways=2, line_bytes=256, miss_window=100)
    defaults.update(kwargs)
    return ICache(**defaults)


class TestFetch:
    def test_cold_fetch_misses(self):
        icache = make_icache()
        assert not icache.fetch(0x1000, cycle=0)
        assert icache.misses == 1

    def test_warm_fetch_hits(self):
        icache = make_icache()
        icache.fetch(0x1000, cycle=0)
        assert icache.fetch(0x1080, cycle=1)  # same 256 B line

    def test_architected_default_geometry(self):
        icache = ICache()
        assert icache._cache.geometry.capacity_bytes == 64 * 1024
        assert icache._cache.geometry.ways == 4


class TestPrefetch:
    def test_prefetch_hides_later_demand(self):
        icache = make_icache()
        already = icache.prefetch(0x2000)
        assert not already
        assert icache.fetch(0x2000, cycle=5)

    def test_prefetch_of_present_line_reports_presence(self):
        icache = make_icache()
        icache.fetch(0x2000, cycle=0)
        assert icache.prefetch(0x2000)

    def test_prefetch_does_not_count_demand_stats(self):
        icache = make_icache()
        icache.prefetch(0x2000)
        assert icache.misses == 0 and icache.hits == 0


class TestMissWindow:
    def test_recent_miss_same_block(self):
        icache = make_icache()
        icache.fetch(0x5000, cycle=10)
        assert icache.recent_miss_in_block(0x5800, cycle=12)

    def test_no_miss_in_other_block(self):
        icache = make_icache()
        icache.fetch(0x5000, cycle=10)
        assert not icache.recent_miss_in_block(0x9000, cycle=12)

    def test_window_expires(self):
        icache = make_icache(miss_window=100)
        icache.fetch(0x5000, cycle=10)
        assert not icache.recent_miss_in_block(0x5000, cycle=200)

    def test_hits_do_not_populate_window(self):
        icache = make_icache()
        icache.fetch(0x5000, cycle=0)
        icache.fetch(0x5000, cycle=1)  # hit
        icache._recent_misses.clear()
        icache.fetch(0x5010, cycle=2)  # hit, same line
        assert not icache.recent_miss_in_block(0x5000, cycle=3)
