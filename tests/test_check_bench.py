"""Tests for the benchmark regression gate (scripts/check_bench.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_bench  # noqa: E402  (path set up above)


def _envelope(name: str, payload: dict) -> dict:
    return {"bench_schema": 1, "bench": name, "generated_by": "test",
            **payload}


def _fresh(tmp_path, monkeypatch, name, payload):
    """Point the checker's repo root at tmp_path holding one fresh file."""
    monkeypatch.setattr(check_bench, "REPO_ROOT", tmp_path)
    (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(payload))


def _committed(monkeypatch, payload):
    monkeypatch.setattr(check_bench, "committed_payload",
                        lambda name, ref: payload)


class TestLeafExtraction:
    def test_numeric_leaves_flatten_and_exclude_bools(self):
        leaves = check_bench.numeric_leaves(
            {"a": 1, "b": {"c": 2.5, "identical": True}, "d": "text"})
        assert leaves == {"a": 1.0, "b.c": 2.5}

    def test_parity_leaves_pick_flag_names_only(self):
        leaves = check_bench.parity_leaves(
            {"bit_identical": True, "nested": {"parity_held": False},
             "fast": True})
        assert leaves == {"bit_identical": True,
                         "nested.parity_held": False}

    def test_gated_selects_machine_relative_ratios(self):
        assert check_bench.gated("warm.speedup_at_4", strict=False)
        assert not check_bench.gated("warm.target_speedup", strict=False)
        assert not check_bench.gated("records_per_second", strict=False)
        assert check_bench.gated("records_per_second", strict=True)
        assert not check_bench.gated("wall_seconds", strict=True)


class TestEnvelope:
    def test_clean_envelope_passes(self):
        assert check_bench.check_envelope(
            "x", _envelope("x", {})) == []

    def test_damage_reported(self):
        problems = check_bench.check_envelope(
            "x", {"bench_schema": 2, "bench": "y"})
        assert len(problems) == 3  # schema, name mismatch, generated_by


class TestGate:
    def test_drop_beyond_limit_fails(self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p",
               _envelope("p", {"speedup": 2.0}))
        _committed(monkeypatch, _envelope("p", {"speedup": 4.0}))
        problems, _ = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert any("dropped 50.0%" in p for p in problems)

    def test_drop_within_limit_passes(self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p",
               _envelope("p", {"speedup": 3.6}))
        _committed(monkeypatch, _envelope("p", {"speedup": 4.0}))
        problems, notes = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert problems == []
        assert any("1 gated key(s)" in n for n in notes)

    def test_parity_flip_fails_regardless_of_throughput(
            self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p",
               _envelope("p", {"speedup": 9.0, "bit_identical": False}))
        _committed(monkeypatch,
                   _envelope("p", {"speedup": 4.0, "bit_identical": True}))
        problems, _ = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert any("flipped true -> false" in p for p in problems)

    def test_disappearing_gated_key_fails(self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p", _envelope("p", {}))
        _committed(monkeypatch, _envelope("p", {"speedup": 4.0}))
        problems, _ = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert any("disappeared" in p for p in problems)

    def test_absolute_throughput_gated_only_under_strict(
            self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p",
               _envelope("p", {"records_per_second": 10.0}))
        _committed(monkeypatch,
                   _envelope("p", {"records_per_second": 100.0}))
        relaxed, _ = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert relaxed == []
        strict, _ = check_bench.check_bench("p", "HEAD", 0.15, True)
        assert any("dropped" in p for p in strict)

    def test_new_bench_passes_with_note(self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch, "p", _envelope("p", {"speedup": 1.0}))
        _committed(monkeypatch, None)
        problems, notes = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert problems == []
        assert any("nothing to regress against" in n for n in notes)

    def test_pre_envelope_baseline_is_grandfathered(
            self, tmp_path, monkeypatch):
        # Fresh side also lacks the envelope; only the drop gate applies.
        _fresh(tmp_path, monkeypatch, "p", {"speedup": 4.0})
        _committed(monkeypatch, {"speedup": 4.0})
        problems, notes = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert problems == []
        assert any("predates the bench envelope" in n for n in notes)

    def test_unreadable_fresh_file_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_bench, "REPO_ROOT", tmp_path)
        problems, _ = check_bench.check_bench("p", "HEAD", 0.15, False)
        assert any("unreadable fresh file" in p for p in problems)


class TestMain:
    def test_main_over_committed_repo_baselines(self):
        """The real gate over the real repo: fresh working tree vs HEAD
        must pass — this is exactly the nightly CI invocation."""
        assert check_bench.main(["--against", "HEAD"]) == 0

    def test_main_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        _fresh(tmp_path, monkeypatch, "p", _envelope("p", {"speedup": 1.0}))
        _committed(monkeypatch, _envelope("p", {"speedup": 4.0}))
        assert check_bench.main(["p"]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_main_errors_when_no_bench_files(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_bench, "REPO_ROOT", tmp_path)
        assert check_bench.main([]) == 1
