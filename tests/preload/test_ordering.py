"""Tests for the ordering table and BTB2 search steering (section 3.7)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.address import SECTORS_PER_BLOCK
from repro.preload.ordering import (
    OrderingEntry,
    OrderingTable,
    OrderingTracker,
    classify_sectors,
    order_sectors,
)

BLOCK = 0x40_0000


class TestOrderingEntry:
    def test_mark_and_query_sectors(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_sector(5)
        assert entry.sector_active(5)
        assert not entry.sector_active(6)

    def test_references(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_reference(0, 2)
        assert entry.referenced_from(0) == {2}
        assert entry.referenced_from(2) == set()

    def test_self_reference_ignored(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_reference(1, 1)
        assert entry.referenced_from(1) == set()

    def test_merge_is_bitwise_or(self):
        a = OrderingEntry(block=BLOCK)
        a.mark_sector(1)
        a.mark_reference(0, 1)
        b = OrderingEntry(block=BLOCK)
        b.mark_sector(2)
        b.mark_reference(0, 3)
        a.merge(b)
        assert a.sector_active(1) and a.sector_active(2)
        assert a.referenced_from(0) == {1, 3}

    def test_copy_is_independent(self):
        entry = OrderingEntry(block=BLOCK)
        copy = entry.copy()
        copy.mark_sector(3)
        assert not entry.sector_active(3)


class TestOrderingTable:
    def test_miss_then_hit(self):
        table = OrderingTable(sets=4, ways=2)
        assert table.lookup(BLOCK) is None
        table.store(OrderingEntry(block=BLOCK))
        assert table.lookup(BLOCK) is not None
        assert table.hits == 1 and table.misses == 1

    def test_store_merges_existing(self):
        table = OrderingTable(sets=4, ways=2)
        first = OrderingEntry(block=BLOCK)
        first.mark_sector(1)
        table.store(first)
        second = OrderingEntry(block=BLOCK)
        second.mark_sector(2)
        table.store(second)
        merged = table.lookup(BLOCK)
        assert merged.sector_active(1) and merged.sector_active(2)

    def test_two_way_lru_eviction(self):
        table = OrderingTable(sets=1, ways=2)
        blocks = [0x1000, 0x2000, 0x3000]
        for block in blocks:
            table.store(OrderingEntry(block=block))
        assert table.lookup(0x1000) is None
        assert table.lookup(0x2000) is not None
        assert table.lookup(0x3000) is not None

    def test_architected_capacity(self):
        table = OrderingTable()
        assert table.capacity == 512

    def test_lookup_by_inner_address(self):
        table = OrderingTable(sets=4, ways=2)
        table.store(OrderingEntry(block=BLOCK))
        assert table.lookup(BLOCK + 0x123) is not None


class TestOrderingTracker:
    def test_marks_sectors_of_completing_instructions(self):
        table = OrderingTable(sets=64, ways=2)
        tracker = OrderingTracker(table)
        tracker.observe(BLOCK + 0x80)   # sector 1
        tracker.observe(BLOCK + 0x900)  # sector 18, quartile 2
        tracker.flush()
        entry = table.lookup(BLOCK)
        assert entry.sector_active(1)
        assert entry.sector_active(18)

    def test_records_quartile_references_from_demand(self):
        table = OrderingTable(sets=64, ways=2)
        tracker = OrderingTracker(table)
        tracker.observe(BLOCK + 0x000)   # enter at quartile 0 (demand)
        tracker.observe(BLOCK + 0xC00)   # move to quartile 3
        tracker.flush()
        assert table.lookup(BLOCK).referenced_from(0) == {3}

    def test_commit_on_block_change(self):
        table = OrderingTable(sets=64, ways=2)
        tracker = OrderingTracker(table)
        tracker.observe(BLOCK)
        tracker.observe(BLOCK + 0x10_000)  # different block commits previous
        assert table.lookup(BLOCK) is not None

    def test_revisit_merges_new_paths(self):
        table = OrderingTable(sets=64, ways=2)
        tracker = OrderingTracker(table)
        tracker.observe(BLOCK + 0x80)
        tracker.observe(BLOCK + 0x10_000)
        tracker.observe(BLOCK + 0x200)
        tracker.flush()
        entry = table.lookup(BLOCK)
        assert entry.sector_active(1) and entry.sector_active(4)


class TestSteering:
    def test_fallback_is_sequential_from_demand(self):
        order = order_sectors(None, BLOCK + 0x280)  # demand sector 5
        assert order[0] == 5
        assert order == [(5 + i) % 32 for i in range(32)]

    def test_active_demand_quartile_first(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_sector(3)    # demand quartile (0)
        entry.mark_sector(20)   # quartile 2, unreferenced
        entry.mark_reference(0, 1)
        entry.mark_sector(9)    # quartile 1, referenced
        order = order_sectors(entry, BLOCK)  # demand sector 0, quartile 0
        assert order.index(3) < order.index(9) < order.index(20)

    def test_active_before_inactive(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_sector(20)  # active, far quartile
        order = order_sectors(entry, BLOCK)
        inactive_demand = order.index(0)  # inactive sector in demand quartile
        assert order.index(20) < inactive_demand

    def test_classes_match_paper_priorities(self):
        entry = OrderingEntry(block=BLOCK)
        entry.mark_sector(1)
        entry.mark_reference(0, 2)
        entry.mark_sector(17)  # active in referenced quartile 2
        entry.mark_sector(30)  # active in unreferenced quartile 3
        classes = dict(classify_sectors(entry, BLOCK))
        assert classes[1] == 0    # active, demand quartile
        assert classes[17] == 1   # active, referenced quartile
        assert classes[30] == 2   # active, other quartile
        assert classes[0] == 3    # inactive, demand quartile
        assert classes[16] == 4   # inactive, referenced quartile
        assert classes[24] == 5   # inactive, other quartile

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=4095),
    )
    def test_order_is_a_permutation(self, sector_bits, offset):
        entry = OrderingEntry(block=BLOCK, sector_bits=sector_bits)
        order = order_sectors(entry, BLOCK + offset)
        assert sorted(order) == list(range(SECTORS_PER_BLOCK))

    @given(st.integers(min_value=0, max_value=4095))
    def test_fallback_order_is_a_permutation(self, offset):
        order = order_sectors(None, BLOCK + offset)
        assert sorted(order) == list(range(SECTORS_PER_BLOCK))
