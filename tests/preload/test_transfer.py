"""Tests for the BTB2 bulk transfer engine timing (section 3.6)."""

from repro.btb.btb2 import BTB2
from repro.btb.entry import BTBEntry
from repro.core.config import ExclusivityMode
from repro.preload.tracker import SearchTracker, TrackerState
from repro.preload.transfer import (
    FULL_BLOCK_TRANSFER_CYCLES,
    SEARCH_PIPELINE_CYCLES,
    TransferEngine,
)

BLOCK = 0x80_0000


def make_engine(exclusivity=ExclusivityMode.SEMI_EXCLUSIVE, drained=None):
    btb2 = BTB2(rows=256, ways=2)
    installed = []
    engine = TransferEngine(
        btb2=btb2,
        install=installed.append,
        exclusivity=exclusivity,
        on_tracker_drained=drained,
    )
    return btb2, engine, installed


def tracker_for(block=BLOCK):
    return SearchTracker(block=block, state=TrackerState.FULL,
                         miss_address=block)


class TestTiming:
    def test_row_completes_after_pipeline_latency(self):
        btb2, engine, installed = make_engine()
        btb2.install(BTBEntry(address=BLOCK + 4, target=0x1))
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=1)
        engine.advance(SEARCH_PIPELINE_CYCLES - 1)
        assert installed == []
        engine.advance(SEARCH_PIPELINE_CYCLES)
        assert len(installed) == 1

    def test_one_row_issued_per_cycle(self):
        btb2, engine, installed = make_engine()
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=4)
        # Rows issue at cycles 0..3, completing at 8..11.
        engine.advance(SEARCH_PIPELINE_CYCLES + 1)
        assert tracker.outstanding_rows == 2

    def test_full_block_takes_136_cycles(self):
        assert FULL_BLOCK_TRANSFER_CYCLES == 136
        btb2, engine, installed = make_engine()
        tracker = tracker_for()
        for sector in range(32):
            engine.enqueue_sector(tracker, BLOCK + sector * 128,
                                  eligible_cycle=0, priority=0)
        # Rows issue at cycles 0..127; the last completes at cycle 135 —
        # 136 cycles of activity, matching the paper's 128 + 8.
        engine.advance(FULL_BLOCK_TRANSFER_CYCLES - 2)
        assert tracker.outstanding_rows > 0
        engine.advance(FULL_BLOCK_TRANSFER_CYCLES - 1)
        assert tracker.outstanding_rows == 0

    def test_eligible_cycle_delays_issue(self):
        btb2, engine, installed = make_engine()
        btb2.install(BTBEntry(address=BLOCK + 4, target=0x1))
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=100, priority=0,
                              rows=1)
        engine.advance(50)
        assert installed == []
        engine.advance(100 + SEARCH_PIPELINE_CYCLES)
        assert len(installed) == 1


class TestDelivery:
    def test_hits_cloned_into_install_sink(self):
        btb2, engine, installed = make_engine()
        original = BTBEntry(address=BLOCK + 4, target=0x1)
        btb2.install(original)
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=1)
        engine.drain()
        assert len(installed) == 1
        assert installed[0] is not original
        assert installed[0].address == BLOCK + 4

    def test_semi_exclusive_demotes_hits(self):
        btb2, engine, installed = make_engine()
        a = BTBEntry(address=BLOCK + 4, target=0x1)
        b = BTBEntry(address=BLOCK + 8, target=0x2)
        btb2.install(a)
        btb2.install(b)
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=1)
        engine.drain()
        # Transferred entries are LRU: two new installs evict exactly them.
        v1 = btb2.install(BTBEntry(address=BLOCK + 12, target=0x3))
        v2 = btb2.install(BTBEntry(address=BLOCK + 16, target=0x4))
        assert {v1.address, v2.address} == {BLOCK + 4, BLOCK + 8}

    def test_inclusive_mode_keeps_hits_mru(self):
        btb2, engine, installed = make_engine(
            exclusivity=ExclusivityMode.INCLUSIVE
        )
        a = BTBEntry(address=BLOCK + 4, target=0x1)
        btb2.install(a)
        btb2.install(BTBEntry(address=BLOCK + 8, target=0x2))
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=1)
        engine.drain()
        # a was touched MRU during transfer (ordered after BLOCK+8): a new
        # install evicts the older entry, not a.
        victim = btb2.install(BTBEntry(address=BLOCK + 12, target=0x3))
        assert victim.address == BLOCK + 4  # ordered first, touched first

    def test_duplicate_rows_not_requeued(self):
        btb2, engine, installed = make_engine()
        tracker = tracker_for()
        queued_first = engine.enqueue_sector(tracker, BLOCK, 0, 0, rows=4)
        queued_again = engine.enqueue_sector(tracker, BLOCK, 0, 0, rows=4)
        assert queued_first == 4
        assert queued_again == 0

    def test_priority_orders_across_trackers(self):
        btb2, engine, installed = make_engine()
        btb2.install(BTBEntry(address=BLOCK + 4, target=0x1))
        btb2.install(BTBEntry(address=BLOCK + 0x2000 + 4, target=0x2))
        low = tracker_for(BLOCK)
        high = tracker_for(BLOCK + 0x2000)
        engine.enqueue_sector(low, BLOCK, eligible_cycle=0, priority=5, rows=1)
        engine.enqueue_sector(high, BLOCK + 0x2000, eligible_cycle=0,
                              priority=0, rows=1)
        engine.drain()
        assert installed[0].address == BLOCK + 0x2000 + 4

    def test_drained_callback_fires_once_per_tracker(self):
        drained = []
        btb2, engine, installed = make_engine(
            drained=lambda tracker, cycle: drained.append((tracker, cycle))
        )
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, eligible_cycle=0, priority=0,
                              rows=4)
        engine.drain()
        assert len(drained) == 1
        assert drained[0][0] is tracker

    def test_stats(self):
        btb2, engine, installed = make_engine()
        btb2.install(BTBEntry(address=BLOCK + 4, target=0x1))
        tracker = tracker_for()
        engine.enqueue_sector(tracker, BLOCK, 0, 0, rows=4)
        engine.drain()
        assert engine.rows_read == 4
        assert engine.entries_transferred == 1
