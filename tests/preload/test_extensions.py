"""Tests for the paper-described extensions (3.4 alternative / section 6).

* decode-time miss reporting (in addition to search-based detection);
* bounded multi-block transfer following cross-block targets;
* software branch-preload instructions (the fourth BTBP write source).
"""

from repro.btb.btb2 import BTB2
from repro.btb.btbp import WriteSource
from repro.btb.entry import BTBEntry
from repro.caches.icache import ICache
from repro.core.config import FilterMode, PredictorConfig
from repro.core.events import MissReport
from repro.core.hierarchy import FirstLevelPredictor
from repro.isa.opcodes import BranchKind
from repro.preload.engine import PreloadEngine
from repro.preload.tracker import TrackerState

BLOCK = 0x40_0000
OTHER_BLOCK = 0x80_0000


def make_engine(**config_overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=4,
        pht_entries=64, ctb_entries=64, fit_entries=4,
        surprise_bht_entries=64, filter_mode=FilterMode.OFF,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(config_overrides)
    config = PredictorConfig(**defaults)
    btb2 = BTB2(rows=256, ways=4)
    hierarchy = FirstLevelPredictor(config, btb2=btb2)
    icache = ICache(capacity_bytes=4096, ways=2, line_bytes=256)
    return PreloadEngine(config, btb2, hierarchy, icache)


class TestDecodeMissReporting:
    def test_decode_miss_feeds_tracker_machinery(self):
        engine = make_engine()
        engine.report_decode_miss(BLOCK + 0x100, cycle=10)
        assert engine.decode_miss_reports == 1
        assert engine.trackers.find(BLOCK) is not None

    def test_decode_miss_dedupes_with_search_miss(self):
        engine = make_engine()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=5))
        engine.report_decode_miss(BLOCK + 0x200, cycle=10)
        assert engine.duplicate_miss_reports == 1


class TestMultiBlockTransfer:
    def _engine_with_cross_block_content(self, **overrides):
        engine = make_engine(multi_block_transfer=True, **overrides)
        # A branch in BLOCK whose target lives in OTHER_BLOCK.
        engine.btb2.install(
            BTBEntry(address=BLOCK + 0x104, target=OTHER_BLOCK + 0x10)
        )
        # Content in the target block worth pulling over.
        engine.btb2.install(
            BTBEntry(address=OTHER_BLOCK + 0x14, target=OTHER_BLOCK + 0x40)
        )
        return engine

    def test_follows_cross_block_target(self):
        engine = self._engine_with_cross_block_content()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        assert engine.followed_blocks == 1
        assert engine.hierarchy.btbp.lookup(OTHER_BLOCK + 0x14) is not None

    def test_disabled_by_default(self):
        engine = make_engine()
        engine.btb2.install(
            BTBEntry(address=BLOCK + 0x104, target=OTHER_BLOCK + 0x10)
        )
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        assert engine.followed_blocks == 0

    def test_follow_requires_free_tracker(self):
        engine = self._engine_with_cross_block_content(tracker_count=1)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        # The single tracker is still draining the source block when the
        # cross-block entry is delivered: no follow happens... unless the
        # delivery postdates the drain.  Either way the engine never
        # exceeds its tracker budget.
        assert engine.trackers.count == 1
        assert engine.followed_blocks <= 1

    def test_same_block_targets_not_followed(self):
        engine = make_engine(multi_block_transfer=True)
        engine.btb2.install(
            BTBEntry(address=BLOCK + 0x104, target=BLOCK + 0x200)
        )
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        assert engine.followed_blocks == 0

    def test_followed_tracker_runs_full_search(self):
        engine = self._engine_with_cross_block_content(tracker_count=3)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        # Advance enough for the source block's first rows to deliver.
        engine.advance(40)
        follower = engine.trackers.find(OTHER_BLOCK)
        assert follower is not None
        assert follower.state is TrackerState.FULL


class TestSoftwarePreload:
    def test_preload_instruction_writes_btbp(self):
        engine = make_engine()
        hierarchy = engine.hierarchy
        entry = hierarchy.software_preload(BLOCK + 0x50, BLOCK + 0x90,
                                           BranchKind.UNCOND)
        assert hierarchy.btbp.lookup(BLOCK + 0x50) is entry
        assert hierarchy.btbp.writes_by_source[
            WriteSource.PRELOAD_INSTRUCTION
        ] == 1

    def test_preloaded_branch_predicts(self):
        engine = make_engine()
        hierarchy = engine.hierarchy
        hierarchy.software_preload(BLOCK + 0x50, BLOCK + 0x90,
                                   BranchKind.UNCOND)
        hit = hierarchy.first_hit_in_row(BLOCK + 0x40)
        assert hit is not None
        resolution = hierarchy.resolve_content(hit.entry)
        assert resolution.taken and resolution.target == BLOCK + 0x90
