"""Tests for the preload engine: filtering, trackers, upgrades (3.5-3.6)."""

import pytest

from repro.btb.btb2 import BTB2
from repro.btb.entry import BTBEntry
from repro.caches.icache import ICache
from repro.core.config import FilterMode, PredictorConfig
from repro.core.events import MissReport
from repro.core.hierarchy import FirstLevelPredictor
from repro.preload.engine import BLOCK_MODE_WAIT_CYCLES, PreloadEngine
from repro.preload.tracker import TrackerState
from repro.preload.transfer import FULL_BLOCK_TRANSFER_CYCLES

BLOCK = 0x40_0000


def make_engine(filter_mode=FilterMode.PARTIAL, trackers=3, steering=True):
    config = PredictorConfig(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=4,
        pht_entries=64, ctb_entries=64, fit_entries=4,
        surprise_bht_entries=64,
        filter_mode=filter_mode, tracker_count=trackers,
        steering_enabled=steering,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    btb2 = BTB2(rows=256, ways=4)
    hierarchy = FirstLevelPredictor(config, btb2=btb2)
    icache = ICache(capacity_bytes=4096, ways=2, line_bytes=256,
                    miss_window=1000)
    return PreloadEngine(config, btb2, hierarchy, icache)


class TestMissFiltering:
    def test_miss_without_icache_miss_starts_partial_search(self):
        engine = make_engine()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.find(BLOCK)
        assert tracker.state is TrackerState.PARTIAL
        assert engine.partial_searches == 1
        assert engine.filtered_misses == 1

    def test_partial_search_covers_4_rows(self):
        engine = make_engine()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.find(BLOCK)
        assert len(tracker.enqueued_rows) == 4

    def test_miss_with_recent_icache_miss_goes_full(self):
        engine = make_engine()
        engine.icache.fetch(BLOCK + 0x80, cycle=5)  # miss in same block
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.find(BLOCK)
        assert tracker.state is TrackerState.FULL
        assert len(tracker.enqueued_rows) == 128
        assert engine.full_searches == 1

    def test_filter_off_always_full(self):
        engine = make_engine(filter_mode=FilterMode.OFF)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        assert engine.trackers.find(BLOCK).state is TrackerState.FULL

    def test_filter_block_mode_waits_without_searching(self):
        engine = make_engine(filter_mode=FilterMode.BLOCK)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.find(BLOCK)
        assert tracker.enqueued_rows == set()
        engine.advance(10 + BLOCK_MODE_WAIT_CYCLES + 1)
        assert tracker.state is TrackerState.FREE
        assert engine.partial_invalidations == 1

    def test_duplicate_reports_ignored(self):
        engine = make_engine()
        report = MissReport(search_address=BLOCK + 0x100, cycle=10)
        engine.report_btb1_miss(report)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x200,
                                           cycle=12))
        assert engine.duplicate_miss_reports == 1

    def test_all_trackers_busy_drops_report(self):
        engine = make_engine(trackers=1)
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x10_000,
                                           cycle=1))
        assert engine.trackers.dropped_miss_reports == 1


class TestTrackerLifecycle:
    def test_partial_without_icache_miss_invalidates_on_completion(self):
        engine = make_engine()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        tracker = engine.trackers.find(BLOCK)
        engine.advance(1000)
        assert tracker.state is TrackerState.FREE
        assert engine.partial_invalidations == 1

    def test_icache_miss_upgrades_partial_to_full(self):
        engine = make_engine()
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        tracker = engine.trackers.find(BLOCK)
        engine.report_icache_miss(BLOCK + 0x200, cycle=3)
        assert tracker.state is TrackerState.FULL
        assert engine.partial_upgrades == 1
        assert len(tracker.enqueued_rows) == 128  # partial rows not re-read

    def test_icache_only_tracker_never_searches(self):
        engine = make_engine()
        engine.report_icache_miss(BLOCK + 0x80, cycle=0)
        tracker = engine.trackers.find(BLOCK)
        assert tracker.state is TrackerState.ICACHE_ONLY
        engine.advance(1000)
        assert engine.transfer.rows_read == 0

    def test_icache_then_btb1_miss_goes_full(self):
        engine = make_engine()
        engine.report_icache_miss(BLOCK + 0x80, cycle=0)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=5))
        assert engine.trackers.find(BLOCK).state is TrackerState.FULL

    def test_full_search_tracker_freed_after_transfer(self):
        engine = make_engine(filter_mode=FilterMode.OFF)
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        engine.advance(FULL_BLOCK_TRANSFER_CYCLES + 20)
        assert engine.trackers.busy() == 0


class TestBlockModeDeadlines:
    """BLOCK-mode wait deadlines must die with the tracker activation.

    The pre-fix engine kept deadlines in a dict keyed by ``id(tracker)``:
    a tracker reset and recycled for a new block aliased the stale
    deadline, which then fired and invalidated the *new* activation.
    """

    def test_recycled_tracker_ignores_stale_deadline(self):
        engine = make_engine(filter_mode=FilterMode.BLOCK, trackers=1)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.trackers[0]
        deadline = tracker.block_deadline
        assert deadline == 10 + BLOCK_MODE_WAIT_CYCLES
        # The wait is abandoned (replacement, flush, ...) and the tracker
        # is recycled for an unrelated block before the old deadline.
        tracker.reset()
        other_block = BLOCK + 0x40_0000
        engine.report_icache_miss(other_block + 0x80, cycle=12)
        assert engine.trackers.find(other_block) is tracker
        assert tracker.state is TrackerState.ICACHE_ONLY
        engine.advance(deadline + 5)
        # Pre-fix: the stale deadline fired here and reset the tracker.
        assert tracker.state is TrackerState.ICACHE_ONLY
        assert tracker.block == other_block
        assert engine.partial_invalidations == 0

    def test_upgrade_disarms_the_wait(self):
        engine = make_engine(filter_mode=FilterMode.BLOCK)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        tracker = engine.trackers.find(BLOCK)
        assert tracker.block_deadline is not None
        engine.report_icache_miss(BLOCK + 0x200, cycle=20)
        assert tracker.block_deadline is None
        assert tracker.state is TrackerState.FULL
        engine.advance(10 + BLOCK_MODE_WAIT_CYCLES + 5)
        assert engine.partial_invalidations == 0

    def test_rearming_after_expiry_works(self):
        engine = make_engine(filter_mode=FilterMode.BLOCK, trackers=1)
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=10))
        engine.advance(10 + BLOCK_MODE_WAIT_CYCLES + 1)
        tracker = engine.trackers.trackers[0]
        assert tracker.state is TrackerState.FREE
        assert engine.partial_invalidations == 1
        # The same tracker object arms a fresh wait for a new activation.
        rearm_cycle = 500
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x300,
                                           cycle=rearm_cycle))
        assert tracker.block_deadline == rearm_cycle + BLOCK_MODE_WAIT_CYCLES
        engine.advance(rearm_cycle + BLOCK_MODE_WAIT_CYCLES + 1)
        assert tracker.state is TrackerState.FREE
        assert engine.partial_invalidations == 2


class TestTransfersReachBTBP:
    def test_full_search_moves_content_into_btbp(self):
        engine = make_engine(filter_mode=FilterMode.OFF)
        for offset in (0x104, 0x504, 0xF04):
            engine.btb2.install(BTBEntry(address=BLOCK + offset, target=0x1))
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        for offset in (0x104, 0x504, 0xF04):
            assert engine.hierarchy.btbp.lookup(BLOCK + offset) is not None

    def test_partial_search_only_covers_miss_sector(self):
        engine = make_engine()
        near = BLOCK + 0x104   # same 128 B sector as the miss
        far = BLOCK + 0xF04
        engine.btb2.install(BTBEntry(address=near, target=0x1))
        engine.btb2.install(BTBEntry(address=far, target=0x1))
        engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100,
                                           cycle=0))
        engine.flush()
        assert engine.hierarchy.btbp.lookup(near) is not None
        assert engine.hierarchy.btbp.lookup(far) is None


class TestSteeringIntegration:
    def test_ordering_knowledge_prioritizes_active_sectors(self):
        engine = make_engine(filter_mode=FilterMode.OFF)
        # Program behaviour: the block is entered at sector 0 and then only
        # sector 20 executes.
        engine.observe_completion(BLOCK + 0x10)
        engine.observe_completion(BLOCK + 20 * 128 + 0x10)
        engine.observe_completion(BLOCK + 0x20_000)  # leave block (commit)
        engine.btb2.install(BTBEntry(address=BLOCK + 20 * 128 + 4, target=0x1))
        engine.btb2.install(BTBEntry(address=BLOCK + 10 * 128 + 4, target=0x1))
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        # Active sector 20 must be read before inactive sector 10 despite
        # sequential order saying otherwise: after enough cycles for the
        # first few sectors only, sector 20's entry is already in the BTBP.
        engine.advance(7 + 3 * 4 + 8 + 4)
        assert engine.hierarchy.btbp.lookup(BLOCK + 20 * 128 + 4) is not None

    def test_steering_disabled_uses_sequential_order(self):
        engine = make_engine(filter_mode=FilterMode.OFF, steering=False)
        engine.observe_completion(BLOCK + 20 * 128 + 0x10)
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        assert engine.ordering_table.hits == 0


@pytest.mark.parametrize("mode", list(FilterMode))
def test_flush_drains_all_modes(mode):
    engine = make_engine(filter_mode=mode)
    engine.report_btb1_miss(MissReport(search_address=BLOCK + 0x100, cycle=0))
    engine.flush()
    assert engine.transfer.pending_rows == 0
    assert engine.transfer.inflight_rows == 0


class TestReportEdgeCases:
    def test_duplicate_icache_miss_ignored(self):
        engine = make_engine()
        engine.report_icache_miss(BLOCK + 0x80, cycle=0)
        engine.report_icache_miss(BLOCK + 0x90, cycle=1)
        assert engine.trackers.busy() == 1

    def test_icache_report_dropped_when_pool_exhausted(self):
        engine = make_engine(trackers=1)
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        engine.report_icache_miss(BLOCK + 0x10_000, cycle=1)
        assert engine.trackers.dropped_icache_reports == 1

    def test_zero_trackers_drop_everything(self):
        engine = make_engine(trackers=0)
        engine.report_btb1_miss(MissReport(search_address=BLOCK, cycle=0))
        engine.report_icache_miss(BLOCK, cycle=0)
        assert engine.trackers.dropped_miss_reports == 1
        assert engine.trackers.dropped_icache_reports == 1
        engine.flush()
        assert engine.transfer.rows_read == 0

    def test_ordering_flush_idempotent(self):
        engine = make_engine()
        engine.observe_completion(BLOCK + 0x10)
        engine.ordering_tracker.flush()
        engine.ordering_tracker.flush()
        entry = engine.ordering_table.lookup(BLOCK)
        assert entry is not None and entry.sector_active(0)
