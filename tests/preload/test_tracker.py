"""Tests for the BTB2 search tracker pool."""

from repro.preload.tracker import SearchTracker, TrackerFile, TrackerState


class TestSearchTracker:
    def test_fresh_tracker_is_free(self):
        tracker = SearchTracker()
        assert tracker.state is TrackerState.FREE
        assert not tracker.fully_active

    def test_fully_active_requires_both_bits(self):
        tracker = SearchTracker(btb1_miss_valid=True)
        assert not tracker.fully_active
        tracker.icache_miss_valid = True
        assert tracker.fully_active

    def test_reset_clears_everything(self):
        tracker = SearchTracker(
            block=0x1000, state=TrackerState.FULL, btb1_miss_valid=True,
            icache_miss_valid=True, miss_address=0x1234, outstanding_rows=3,
        )
        tracker.enqueued_rows.add(0x1000)
        tracker.reset()
        assert tracker.state is TrackerState.FREE
        assert not tracker.btb1_miss_valid
        assert not tracker.icache_miss_valid
        assert tracker.outstanding_rows == 0
        assert tracker.enqueued_rows == set()


class TestTrackerFile:
    def test_architected_count(self):
        assert TrackerFile().count == 3

    def test_allocate_until_full(self):
        pool = TrackerFile(count=2)
        a = pool.allocate(0x1000, cycle=0)
        b = pool.allocate(0x2000, cycle=1)
        assert a is not b
        assert pool.allocate(0x3000, cycle=2) is None
        assert pool.busy() == 2

    def test_find_by_block(self):
        pool = TrackerFile(count=2)
        tracker = pool.allocate(0x1000, cycle=0)
        assert pool.find(0x1000) is tracker
        assert pool.find(0x9999) is None

    def test_allocation_claims_immediately(self):
        pool = TrackerFile(count=2)
        tracker = pool.allocate(0x1000, cycle=0)
        assert tracker.state is not TrackerState.FREE

    def test_recycles_oldest_icache_only(self):
        pool = TrackerFile(count=2)
        old = pool.allocate(0x1000, cycle=0, state=TrackerState.ICACHE_ONLY)
        young = pool.allocate(0x2000, cycle=5, state=TrackerState.ICACHE_ONLY)
        recycled = pool.allocate(0x3000, cycle=10)
        assert recycled is old
        assert recycled.block == 0x3000

    def test_never_steals_searching_trackers(self):
        pool = TrackerFile(count=1)
        pool.allocate(0x1000, cycle=0)
        assert pool.allocate(0x2000, cycle=1) is None

    def test_allocation_counter(self):
        pool = TrackerFile(count=3)
        pool.allocate(0x1000, 0)
        pool.allocate(0x2000, 0)
        assert pool.allocations == 2
