"""Tests for the synthetic program builder."""

from repro.workloads.program import (
    BasicBlock,
    ProgramShape,
    TerminatorKind,
    build_program,
)


def small_shape(**overrides):
    defaults = dict(functions=30, seed=42)
    defaults.update(overrides)
    return ProgramShape(**defaults)


class TestLayout:
    def test_functions_laid_out_in_order(self):
        program = build_program(small_shape())
        addresses = [fn.address for fn in program.functions]
        assert addresses == sorted(addresses)

    def test_blocks_contiguous_within_function(self):
        program = build_program(small_shape())
        for fn in program.functions:
            for current, following in zip(fn.blocks, fn.blocks[1:]):
                assert current.end_address == following.address

    def test_base_address_honoured(self):
        program = build_program(small_shape(), base_address=0x4000_0000)
        assert program.functions[0].address == 0x4000_0000

    def test_addresses_even(self):
        program = build_program(small_shape())
        for fn in program.functions:
            assert fn.address % 2 == 0

    def test_footprint_positive(self):
        program = build_program(small_shape())
        assert program.footprint_bytes > 0


class TestDeterminism:
    def test_same_shape_same_program(self):
        a = build_program(small_shape())
        b = build_program(small_shape())
        assert [fn.address for fn in a.functions] == [
            fn.address for fn in b.functions
        ]
        for fa, fb in zip(a.functions, b.functions):
            assert [blk.terminator for blk in fa.blocks] == [
                blk.terminator for blk in fb.blocks
            ]

    def test_different_seed_different_program(self):
        a = build_program(small_shape(seed=1))
        b = build_program(small_shape(seed=2))
        terminators_a = [
            blk.terminator for fn in a.functions for blk in fn.blocks
        ]
        terminators_b = [
            blk.terminator for fn in b.functions for blk in fn.blocks
        ]
        assert terminators_a != terminators_b


class TestStructure:
    def test_every_function_ends_with_return(self):
        program = build_program(small_shape())
        for fn in program.functions:
            assert fn.blocks[-1].terminator is TerminatorKind.RETURN

    def test_branch_targets_within_function(self):
        program = build_program(small_shape())
        for fn in program.functions:
            for block in fn.blocks:
                if block.terminator in (TerminatorKind.COND,
                                        TerminatorKind.UNCOND):
                    assert 0 <= block.target_block < len(fn.blocks)
                if block.terminator is TerminatorKind.INDIRECT:
                    assert block.indirect_targets
                    for target in block.indirect_targets:
                        assert 0 <= target < len(fn.blocks)

    def test_call_targets_are_other_functions(self):
        program = build_program(small_shape(call_fraction=0.5))
        calls = [
            (fn.index, block.target_function)
            for fn in program.functions
            for block in fn.blocks
            if block.terminator is TerminatorKind.CALL
        ]
        assert calls, "expected some calls at call_fraction=0.5"
        for caller, callee in calls:
            assert callee != caller
            assert 0 <= callee < len(program.functions)

    def test_loops_have_pattern_trip_counts(self):
        shape = small_shape(functions=100, loop_fraction=0.5,
                            loop_trips=(3, 5))
        program = build_program(shape)
        loops = [
            block
            for fn in program.functions
            for i, block in enumerate(fn.blocks)
            if block.terminator is TerminatorKind.COND
            and block.target_block <= i
        ]
        assert loops, "expected some loops at loop_fraction=0.5"
        for block in loops:
            assert 3 <= block.pattern_period <= 5

    def test_forward_conditional_classes(self):
        shape = small_shape(functions=200, forward_taken_bias=0.3)
        program = build_program(shape)
        forwards = [
            block
            for fn in program.functions
            for i, block in enumerate(fn.blocks)
            if block.terminator is TerminatorKind.COND
            and block.target_block > i
        ]
        biased = [b for b in forwards if b.taken_probability >= 0.9]
        rare = [b for b in forwards if b.taken_probability <= 0.05]
        patterned = [b for b in forwards if b.pattern_period]
        assert biased and rare and patterned

    def test_static_branch_count(self):
        program = build_program(small_shape())
        manual = sum(
            1
            for fn in program.functions
            for block in fn.blocks
            if block.terminator is not TerminatorKind.FALLTHROUGH
        )
        assert program.static_branch_count == manual


class TestBasicBlock:
    def test_sizes(self):
        block = BasicBlock(body_lengths=[4, 2, 6],
                           terminator=TerminatorKind.RETURN, branch_length=4)
        assert block.body_bytes == 12
        assert block.size_bytes == 16

    def test_fallthrough_has_no_branch_bytes(self):
        block = BasicBlock(body_lengths=[4, 4])
        assert block.size_bytes == 8

    def test_branch_address_after_body(self):
        block = BasicBlock(body_lengths=[4, 4],
                           terminator=TerminatorKind.RETURN, branch_length=6)
        block.address = 0x100
        assert block.branch_address == 0x108
        assert block.end_address == 0x10E
