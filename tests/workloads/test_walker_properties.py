"""Property-based tests on walker invariants across arbitrary shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import WalkProfile, generate_trace
from repro.workloads.program import ProgramShape, build_program

from tests.conftest import assert_contiguous


@st.composite
def shapes(draw):
    blocks_low = draw(st.integers(min_value=2, max_value=4))
    blocks_high = draw(st.integers(min_value=blocks_low, max_value=8))
    instr_low = draw(st.integers(min_value=1, max_value=3))
    instr_high = draw(st.integers(min_value=instr_low, max_value=6))
    return ProgramShape(
        functions=draw(st.integers(min_value=2, max_value=40)),
        blocks_per_function=(blocks_low, blocks_high),
        instructions_per_block=(instr_low, instr_high),
        cond_fraction=draw(st.floats(min_value=0.0, max_value=0.6)),
        uncond_fraction=draw(st.floats(min_value=0.0, max_value=0.2)),
        call_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        indirect_fraction=draw(st.floats(min_value=0.0, max_value=0.1)),
        loop_fraction=draw(st.floats(min_value=0.0, max_value=0.5)),
        forward_taken_bias=draw(st.floats(min_value=0.0, max_value=0.6)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@st.composite
def profiles(draw):
    return WalkProfile(
        zipf_s=draw(st.floats(min_value=0.5, max_value=2.0)),
        uniform_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        burst_mean=draw(st.floats(min_value=1.0, max_value=5.0)),
        echo_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        echo_delay=draw(st.integers(min_value=1, max_value=100)),
        max_call_depth=draw(st.integers(min_value=1, max_value=6)),
        max_loop_iterations=draw(st.integers(min_value=1, max_value=16)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@settings(max_examples=25, deadline=None)
@given(shapes(), profiles())
def test_traces_always_valid_and_contiguous(shape, profile):
    """Any shape/profile combination yields a valid, contiguous trace."""
    program = build_program(shape)
    trace = generate_trace(program, 600, profile)
    assert len(trace) == 600
    for record in trace:
        record.validate()
    assert_contiguous(trace)


@settings(max_examples=25, deadline=None)
@given(shapes(), profiles())
def test_traces_deterministic(shape, profile):
    program = build_program(shape)
    assert generate_trace(program, 300, profile) == generate_trace(
        program, 300, profile
    )


@settings(max_examples=15, deadline=None)
@given(shapes())
def test_layout_blocks_never_overlap(shape):
    program = build_program(shape)
    previous_end = 0
    for fn in program.functions:
        assert fn.address >= previous_end
        for block in fn.blocks:
            assert block.end_address > block.address
        previous_end = fn.blocks[-1].end_address
