"""Adversarial BTB-probe workloads: geometry, generation, and catalog wiring.

Each family is a constructed microbenchmark whose trace properties are
pure functions of its site geometry, so the tests check the *engineered*
properties directly: capacity overcommit, single-row residency,
alternating indirect targets, page interleaving — and that every trace is
a perfectly chained control-flow walk (no accidental discontinuities).
"""

import pytest

from repro.isa.opcodes import BranchKind
from repro.workloads.adversarial import (
    ADVERSARIAL_WORKLOADS,
    AdversarialSpec,
    adversarial_by_name,
    corpus_trace,
)
from repro.workloads.catalog import workload_by_name
from tests.conftest import assert_contiguous

_BTB1_CAPACITY = 4096
_BTB1_ROWS = 1024
_ROW_BYTES = 32


def _by_family(family):
    spec, = [s for s in ADVERSARIAL_WORKLOADS if s.family == family]
    return spec


class TestCatalog:
    def test_four_families_registered(self):
        assert [spec.family for spec in ADVERSARIAL_WORKLOADS] == [
            "capacity", "associativity", "aliasing", "thrash"]
        assert all(spec.name.startswith("adversarial/")
                   for spec in ADVERSARIAL_WORKLOADS)

    @pytest.mark.parametrize("spec", ADVERSARIAL_WORKLOADS,
                             ids=lambda spec: spec.family)
    def test_workload_by_name_resolves_each_family(self, spec):
        assert workload_by_name(spec.name) is spec

    def test_substring_lookup(self):
        assert adversarial_by_name("tracker-thrash").family == "thrash"
        assert adversarial_by_name("CAPACITY").family == "capacity"
        with pytest.raises(KeyError):
            adversarial_by_name("nonexistent")


class TestGeneration:
    @pytest.mark.parametrize("spec", ADVERSARIAL_WORKLOADS,
                             ids=lambda spec: spec.family)
    def test_traces_are_contiguous_walks(self, spec):
        records = spec.generate(0.0)
        assert_contiguous(records)
        assert len(records) == spec.scaled_length(0.0)

    @pytest.mark.parametrize("spec", ADVERSARIAL_WORKLOADS,
                             ids=lambda spec: spec.family)
    def test_generation_is_deterministic(self, spec):
        assert spec.generate(0.0) == spec.generate(0.0)

    def test_scaled_length_floors_at_two_passes(self):
        spec = _by_family("capacity")
        floor = spec.scaled_length(0.0)
        assert floor >= 2 * spec.records_per_pass
        assert floor >= 4_000
        assert spec.scaled_length(1.0) >= spec.trace_length


class TestFamilyGeometry:
    def test_capacity_overcommits_the_btb1(self):
        spec = _by_family("capacity")
        assert spec.sites > _BTB1_CAPACITY
        assert spec.unique_branches == spec.sites

    def test_associativity_sites_share_one_row(self):
        spec = _by_family("associativity")
        rows = {(spec.site_address(site) >> 5) % _BTB1_ROWS
                for site in range(spec.sites)}
        assert len(rows) == 1
        assert spec.sites > 4  # overcommits the 4 ways

    def test_aliasing_targets_alternate_between_passes(self):
        spec = _by_family("aliasing")
        records = spec.generate(0.0)
        branches = [record for record in records
                    if record.kind is BranchKind.INDIRECT
                    and record.address == spec.site_address(0)
                    + spec.fillers * 4]
        targets = {record.target for record in branches}
        assert len(targets) == 2
        low, high = sorted(targets)
        assert high - low == 4

    def test_thrash_interleaves_across_pages(self):
        spec = _by_family("thrash")
        pages = {spec.site_address(site) >> 12 for site in range(spec.sites)}
        assert len(pages) == spec.groups == 8
        # Interleaved visit order: consecutive sites land in distinct pages.
        first_eight = [spec.site_address(site) >> 12 for site in range(8)]
        assert len(set(first_eight)) == 8


class TestSpecValidation:
    def test_block_overrunning_stride_is_rejected(self):
        with pytest.raises(ValueError, match="overruns stride"):
            AdversarialSpec(name="bad", family="capacity", sites=4,
                            fillers=20, stride=32, trace_length=1_000)

    def test_aliasing_without_fillers_is_rejected(self):
        with pytest.raises(ValueError, match="alternating entry points"):
            AdversarialSpec(name="bad", family="aliasing", sites=4,
                            fillers=0, stride=64, alternate_targets=True,
                            trace_length=1_000)


class TestFuzzCorpusTraces:
    def test_corpus_trace_is_deterministic(self):
        assert corpus_trace(5) == corpus_trace(5)
        assert corpus_trace(5) != corpus_trace(6)

    def test_corpus_traces_rotate_through_families(self):
        lengths = {len(corpus_trace(seed, 300)) for seed in range(4)}
        assert lengths  # every family yields a non-empty window
        for seed in range(4):
            assert len(corpus_trace(seed, 300)) <= 300
