"""Tests for the Table 4 workload catalog."""

import pytest

from repro.trace.stats import collect_stats
from repro.workloads.catalog import (
    TABLE4_WORKLOADS,
    default_scale,
    workload_by_name,
)


class TestCatalogShape:
    def test_thirteen_workloads(self):
        assert len(TABLE4_WORKLOADS) == 13

    def test_names_unique(self):
        names = [spec.name for spec in TABLE4_WORKLOADS]
        assert len(set(names)) == 13

    def test_paper_counters_verbatim(self):
        spec = workload_by_name("DayTrader DBServ")
        assert spec.paper_unique_branches == 34_819
        assert spec.paper_unique_taken == 22_217

    def test_mix_trace_has_second_program(self):
        spec = workload_by_name("WASDB+CBW2")
        assert spec.mix_shape is not None
        assert len(spec.build_programs()) == 2

    def test_other_traces_single_program(self):
        spec = workload_by_name("CB84")
        assert len(spec.build_programs()) == 1

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("SPEC2017")

    def test_larger_paper_counts_get_larger_pools(self):
        small = workload_by_name("TPF")
        large = workload_by_name("Z/OS Trade6")
        assert large.shape.functions > small.shape.functions


class TestTraceGeneration:
    def test_scaled_length_floor(self):
        spec = TABLE4_WORKLOADS[0]
        assert spec.scaled_length(0.000001) == 50_000
        assert spec.scaled_length(1.0) == spec.trace_length

    def test_generation_is_deterministic(self):
        spec = workload_by_name("TPF")
        a = spec.generate(scale=0.06)
        b = spec.generate(scale=0.06)
        assert a == b

    def test_trace_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        spec = workload_by_name("TPF")
        first = spec.trace(scale=0.06)
        cached_files = list(tmp_path.glob("*.ztrc"))
        assert len(cached_files) == 1
        second = spec.trace(scale=0.06)
        assert first == second

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        spec = workload_by_name("TPF")
        trace = spec.trace(scale=0.06)
        assert trace

    def test_workload_is_capacity_relevant_even_scaled(self):
        # Even a scaled slice of a catalog workload must keep a unique
        # taken-branch population comparable to first-level capacity —
        # that is what the pool floor in scaled_functions() protects.
        spec = workload_by_name("DayTrader DBServ")
        stats = collect_stats(spec.generate(scale=0.2))
        assert stats.unique_taken_branch_addresses > 2_000

    def test_mix_trace_generates(self):
        spec = workload_by_name("WASDB+CBW2")
        trace = spec.generate(scale=0.03)
        assert len(trace) == spec.scaled_length(0.03)


class TestScaleEnv:
    def test_default_scale_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() == 1.0

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()
