"""Tests for the trace walker: validity, continuity, determinism."""

from repro.isa.opcodes import BranchKind
from repro.workloads.generator import (
    TraceWalker,
    WalkProfile,
    generate_mixed_trace,
    generate_trace,
)
from repro.workloads.program import ProgramShape, TerminatorKind, build_program

from tests.conftest import assert_contiguous

import pytest


def small_program(seed=42, functions=30, **shape_overrides):
    shape = ProgramShape(functions=functions, seed=seed, **shape_overrides)
    return build_program(shape)


class TestTraceValidity:
    def test_every_record_validates(self):
        trace = generate_trace(small_program(), 5_000)
        for record in trace:
            record.validate()

    def test_control_flow_is_contiguous(self):
        # The strongest generator invariant: each record's next_address is
        # the next record's address — no unexplained discontinuities, even
        # across transactions (the dispatcher bridges them).
        trace = generate_trace(small_program(), 5_000)
        assert_contiguous(trace)

    def test_contiguity_with_calls_and_loops(self):
        program = small_program(call_fraction=0.4, loop_fraction=0.4)
        trace = generate_trace(program, 5_000)
        assert_contiguous(trace)

    def test_requested_length(self):
        assert len(generate_trace(small_program(), 1234)) == 1234

    def test_addresses_fall_inside_program_or_dispatcher(self):
        program = small_program()
        low = program.base_address - 64
        high = program.base_address + program.footprint_bytes
        for record in generate_trace(program, 2_000):
            assert low <= record.address < high


class TestDeterminism:
    def test_same_profile_same_trace(self):
        program = small_program()
        profile = WalkProfile(seed=9)
        a = generate_trace(program, 3_000, profile)
        b = generate_trace(program, 3_000, profile)
        assert a == b

    def test_different_seed_different_trace(self):
        program = small_program()
        a = generate_trace(program, 3_000, WalkProfile(seed=1))
        b = generate_trace(program, 3_000, WalkProfile(seed=2))
        assert a != b


class TestWorkloadStructure:
    def test_dispatcher_present_between_transactions(self):
        # Small functions so several transactions fit in the trace.
        program = small_program(blocks_per_function=(2, 4),
                                instructions_per_block=(1, 3),
                                call_fraction=0.05)
        trace = generate_trace(program, 5_000)
        dispatcher_entry = program.base_address - 64
        dispatches = [
            r for r in trace
            if r.kind is BranchKind.INDIRECT and r.address < program.base_address
        ]
        assert dispatches, "expected dispatcher indirect branches"
        for record in dispatches:
            assert record.taken
            assert record.target >= program.base_address
        assert any(r.address == dispatcher_entry for r in trace)

    def test_burst_repeats_roots(self):
        program = small_program()
        profile = WalkProfile(seed=3, burst_mean=4.0, uniform_fraction=1.0)
        walker = TraceWalker(program, profile)
        roots = [next(walker._root_sequence()) for _ in range(1)]  # smoke
        sequence = walker._root_sequence()
        sampled = [next(sequence).index for _ in range(200)]
        repeats = sum(1 for a, b in zip(sampled, sampled[1:]) if a == b)
        assert repeats > 50  # burst_mean 4 => ~75% repeats

    def test_no_bursts_when_mean_is_one(self):
        program = small_program()
        walker = TraceWalker(program, WalkProfile(seed=3, burst_mean=1.0))
        sequence = walker._root_sequence()
        sampled = [next(sequence).index for _ in range(50)]
        assert len(set(sampled)) > 1

    def test_cold_sweep_covers_pool(self):
        program = small_program(functions=40)
        profile = WalkProfile(seed=3, uniform_fraction=1.0, burst_mean=1.0,
                              cold_mode="sweep", cold_stride=1)
        walker = TraceWalker(program, profile)
        sequence = walker._root_sequence()
        visited = {next(sequence).index for _ in range(40)}
        assert visited == set(range(40))

    def test_loop_trips_are_deterministic_per_entry(self):
        # A hand-built single-loop function: b0 (body) <- b1 (loop, 4 trips),
        # then b2 returns.  Every invocation must run the loop branch taken
        # exactly trips-1 = 3 times and exit not-taken once.
        from repro.workloads.program import BasicBlock, Function, Program

        blocks = [
            BasicBlock(body_lengths=[4, 4]),
            BasicBlock(body_lengths=[4], terminator=TerminatorKind.COND,
                       target_block=0, pattern_period=4,
                       taken_probability=0.75),
            BasicBlock(body_lengths=[4], terminator=TerminatorKind.RETURN),
        ]
        program = Program(functions=[Function(index=0, blocks=blocks)])
        trace = generate_trace(program, 2_000)
        loop_address = blocks[1].branch_address
        outcomes = [r.taken for r in trace
                    if r.is_branch and r.address == loop_address]
        assert outcomes
        run = 0
        for taken in outcomes:
            if taken:
                run += 1
                assert run <= 3
            else:
                assert run == 3  # the exit always follows exactly 3 trips
                run = 0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WalkProfile(cold_mode="bogus")
        with pytest.raises(ValueError):
            WalkProfile(cold_stride=0)


class TestMixedTraces:
    def test_mixed_trace_interleaves_programs(self):
        a = build_program(ProgramShape(functions=20, seed=1),
                          base_address=0x1000_0000)
        b = build_program(ProgramShape(functions=20, seed=2),
                          base_address=0x8000_0000)
        trace = generate_mixed_trace([a, b], length=20_000, slice_length=2_000)
        in_a = sum(1 for r in trace if r.address < 0x8000_0000 - 64)
        in_b = len(trace) - in_a
        assert in_a > 4_000 and in_b > 4_000

    def test_mixed_trace_length(self):
        a = build_program(ProgramShape(functions=10, seed=1))
        b = build_program(ProgramShape(functions=10, seed=2),
                          base_address=0x8000_0000)
        trace = generate_mixed_trace([a, b], length=5_000, slice_length=500)
        assert len(trace) == 5_000
