"""Auditor wiring, hook behaviour, collect mode, and the event trail."""

import pytest

from repro.audit import AUDIT_ENV, Auditor, AuditViolation, audit_from_env
from repro.btb.entry import BTBEntry
from repro.core.config import PredictorConfig
from repro.engine.simulator import Simulator
from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestWiring:
    def test_attach_plants_auditor_everywhere(self):
        auditor = Auditor()
        simulator = Simulator(config=small_config(), audit=auditor)
        assert simulator.audit is auditor
        assert simulator.search.audit is auditor
        assert simulator.hierarchy.btb1.audit is auditor
        assert simulator.hierarchy.btbp.audit is auditor
        assert simulator.btb2.audit is auditor
        assert simulator.preload.audit is auditor

    def test_attach_tolerates_disabled_components(self):
        simulator = Simulator(
            config=small_config(btbp_enabled=False, btb2_enabled=False),
            audit=Auditor(),
        )
        assert simulator.hierarchy.btbp is None
        assert simulator.btb2 is None
        assert simulator.preload is None

    def test_unaudited_simulator_has_no_hooks(self):
        simulator = Simulator(config=small_config())
        assert simulator.audit is None
        assert simulator.search.audit is None
        assert simulator.hierarchy.btb1.audit is None

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Auditor(interval=0)


class TestCleanRun:
    def test_audited_run_passes_and_counts_checks(self):
        auditor = Auditor(interval=8)
        simulator = Simulator(config=small_config(), audit=auditor)
        simulator.run(loop_trace(40))
        summary = auditor.summary()
        assert summary["clock_monotonicity"] == 40 * 5  # every instruction
        assert summary["structural_scan"] >= 2  # periodic + finish
        assert summary["counter_conservation"] == 1
        assert summary["btb_row"] > 0
        assert auditor.violations == []

    def test_audited_results_match_unaudited(self):
        trace = loop_trace(40)
        plain = Simulator(config=small_config())
        plain.run(trace)
        audited = Simulator(config=small_config(), audit=Auditor(interval=8))
        audited.run(trace)
        assert audited.counters.cycles == plain.counters.cycles
        assert audited.counters.outcomes == plain.counters.outcomes
        assert audited.counters.penalty_cycles == plain.counters.penalty_cycles


class TestFailureModes:
    def corrupt(self, simulator):
        # One object twice in a row: the identity bug's end state.
        shared = BTBEntry(address=0x100, target=0x9999)
        simulator.hierarchy.btb1._rows[
            simulator.hierarchy.btb1.row_index(0x100)
        ].extend([shared, shared])

    def test_violation_raised_with_event_trail(self):
        auditor = Auditor(interval=4)
        simulator = Simulator(config=small_config(), audit=auditor)
        self.corrupt(simulator)
        with pytest.raises(AuditViolation) as exc_info:
            simulator.run(loop_trace(40))
        violation = exc_info.value
        assert violation.check == "structural_scan"
        assert any("duplicate tag" in problem
                   for problem in violation.problems)
        assert violation.events  # the trail made it into the exception
        assert "last" in str(violation) and "step" in str(violation)

    def test_violation_is_an_assertion_error(self):
        assert issubclass(AuditViolation, AssertionError)

    def test_collect_mode_keeps_simulating(self):
        auditor = Auditor(interval=4, collect=True)
        simulator = Simulator(config=small_config(), audit=auditor)
        self.corrupt(simulator)
        simulator.run(loop_trace(40))  # does not raise
        assert auditor.violations
        assert all(v.check == "structural_scan" for v in auditor.violations)

    def test_finish_runs_final_scan(self):
        auditor = Auditor(interval=10_000)  # periodic scan never fires
        simulator = Simulator(config=small_config(), audit=auditor)
        simulator.run(loop_trace(5))
        assert auditor.summary()["structural_scan"] == 1


class TestEnv:
    def test_audit_from_env_parses_truthy_values(self, monkeypatch):
        for value in ("1", "true", "on", " TRUE "):
            monkeypatch.setenv(AUDIT_ENV, value)
            assert audit_from_env()
        for value in ("", "0", "false", "off", "banana"):
            monkeypatch.setenv(AUDIT_ENV, value)
            assert not audit_from_env()
        monkeypatch.delenv(AUDIT_ENV)
        assert not audit_from_env()
