"""Each invariant check must catch its hand-corrupted counterexample."""

import pytest

from repro.audit import invariants
from repro.btb.btb2 import BTB2
from repro.btb.entry import BTBEntry
from repro.btb.storage import BranchTargetBuffer
from repro.caches.icache import ICache
from repro.core.config import PredictorConfig
from repro.core.events import Prediction, PredictionLevel
from repro.core.hierarchy import FirstLevelPredictor
from repro.engine.simulator import Simulator
from repro.preload.engine import PreloadEngine
from repro.preload.tracker import TrackerState
from tests.conftest import BASE, loop_trace

BLOCK = 0x40_0000


def entry(address, target=0x9999):
    return BTBEntry(address=address, target=target)


def small_config(**overrides):
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=64,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def make_engine(**overrides):
    config = small_config(**overrides)
    btb2 = BTB2(rows=config.btb2_rows, ways=config.btb2_ways)
    hierarchy = FirstLevelPredictor(config, btb2=btb2)
    icache = ICache(capacity_bytes=4096, ways=2, line_bytes=256,
                    miss_window=1000)
    return PreloadEngine(config, btb2, hierarchy, icache)


class TestBtbRow:
    def test_clean_row_passes(self):
        btb = BranchTargetBuffer(rows=8, ways=2)
        btb.install(entry(0x100))
        btb.install(entry(0x110))
        assert invariants.check_btb(btb) == []

    def test_overfull_row_detected(self):
        btb = BranchTargetBuffer(rows=8, ways=2)
        row = btb._rows[0]
        row.extend([entry(0x100), entry(0x110), entry(0x118)])
        problems = invariants.check_btb_row(btb, row)
        assert any("3 entries" in problem for problem in problems)

    def test_duplicate_tags_detected(self):
        btb = BranchTargetBuffer(rows=8, ways=2)
        row = btb._rows[0]
        row.extend([entry(0x100), entry(0x100)])
        problems = invariants.check_btb_row(btb, row)
        assert any("duplicate tag" in problem for problem in problems)

    def test_duplicate_objects_detected(self):
        # The pre-fix ``touch`` could insert one object twice via an
        # equality match; the duplicate-tag check catches that shape too.
        btb = BranchTargetBuffer(rows=8, ways=2)
        shared = entry(0x100)
        row = btb._rows[0]
        row.extend([shared, shared])
        assert invariants.check_btb_row(btb, row)

    def test_whole_btb_scan_finds_corrupt_row(self):
        btb = BranchTargetBuffer(rows=8, ways=2)
        btb.install(entry(0x100))
        btb._rows[3].extend([entry(0x100 + 3 * 0x20)] * 2)
        assert invariants.check_btb(btb)


class TestExclusivity:
    def test_clean_hierarchy_passes(self):
        config = small_config()
        btb2 = BTB2(rows=64, ways=2)
        hierarchy = FirstLevelPredictor(config, btb2=btb2)
        hierarchy.btb1.install(entry(0x100))
        hierarchy.btbp.install(entry(0x200))
        btb2.install(entry(0x100))  # equal-but-distinct clone is legal
        assert invariants.check_exclusivity(hierarchy, btb2) == []

    def test_shared_object_between_btb1_and_btbp_detected(self):
        hierarchy = FirstLevelPredictor(small_config())
        shared = entry(0x100)
        hierarchy.btb1.install(shared)
        hierarchy.btbp._rows[hierarchy.btbp.row_index(0x100)].append(shared)
        problems = invariants.check_exclusivity(hierarchy)
        assert any("BTB1 and BTBP share" in problem for problem in problems)

    def test_btb2_reference_leak_detected(self):
        config = small_config()
        btb2 = BTB2(rows=64, ways=2)
        hierarchy = FirstLevelPredictor(config, btb2=btb2)
        leaked = entry(0x100)
        hierarchy.btb1.install(leaked)
        btb2._rows[btb2.row_index(0x100)].append(leaked)
        problems = invariants.check_exclusivity(hierarchy, btb2)
        assert any("BTB2 shares" in problem for problem in problems)


class TestTrackers:
    def test_clean_trackers_pass(self):
        engine = make_engine()
        assert invariants.check_trackers(engine) == []

    def test_free_tracker_with_armed_deadline_detected(self):
        # The pre-fix engine kept deadlines keyed by ``id(tracker)`` — after
        # a reset the recycled tracker aliased the stale deadline.  On the
        # tracker itself this state is now directly checkable.
        engine = make_engine()
        tracker = engine.trackers.trackers[0]
        tracker.block_deadline = 500
        problems = invariants.check_trackers(engine)
        assert any("stale deadline" in problem for problem in problems)

    def test_free_tracker_with_valid_bits_detected(self):
        engine = make_engine()
        tracker = engine.trackers.trackers[0]
        tracker.btb1_miss_valid = True
        problems = invariants.check_trackers(engine)
        assert any("FREE but has valid bits" in problem
                   for problem in problems)

    def test_two_trackers_on_one_block_detected(self):
        engine = make_engine()
        for tracker in engine.trackers.trackers[:2]:
            tracker.state = TrackerState.PARTIAL
            tracker.block = BLOCK
            tracker.btb1_miss_valid = True
        problems = invariants.check_trackers(engine)
        assert any("both track block" in problem for problem in problems)

    def test_deadline_on_fully_active_tracker_detected(self):
        engine = make_engine()
        tracker = engine.trackers.trackers[0]
        tracker.state = TrackerState.PARTIAL
        tracker.block = BLOCK
        tracker.btb1_miss_valid = True
        tracker.icache_miss_valid = True
        tracker.block_deadline = 500
        problems = invariants.check_trackers(engine)
        assert any("fully active" in problem for problem in problems)

    def test_icache_only_with_search_in_flight_detected(self):
        engine = make_engine()
        tracker = engine.trackers.trackers[0]
        tracker.state = TrackerState.ICACHE_ONLY
        tracker.block = BLOCK
        tracker.icache_miss_valid = True
        tracker.outstanding_rows = 2
        problems = invariants.check_trackers(engine)
        assert any("search in flight" in problem for problem in problems)


class TestCounterConservation:
    def run_simulator(self):
        simulator = Simulator(config=small_config())
        simulator.run(loop_trace(30))
        return simulator

    def test_real_run_conserves(self):
        simulator = self.run_simulator()
        assert invariants.check_counter_conservation(simulator) == []

    def test_dropped_outcome_detected(self):
        simulator = self.run_simulator()
        outcomes = simulator.counters.outcomes
        kind = next(k for k, v in outcomes.items() if v)
        outcomes[kind] -= 1
        problems = invariants.check_counter_conservation(simulator)
        assert any("outcome kinds sum" in problem for problem in problems)

    def test_unattributed_cycles_detected(self):
        simulator = self.run_simulator()
        simulator.counters.cycles += 5.0
        problems = invariants.check_counter_conservation(simulator)
        assert any("cycle conservation" in problem for problem in problems)


class TestPredictionResidency:
    def make_prediction(self, resident_entry, level=PredictionLevel.BTB1):
        return Prediction(
            branch_address=resident_entry.address, taken=True, target=0x9999,
            level=level, ready_cycle=0, entry=resident_entry,
        )

    def test_resident_entry_passes(self):
        hierarchy = FirstLevelPredictor(small_config())
        resident = entry(0x100)
        hierarchy.btb1.install(resident)
        prediction = self.make_prediction(resident)
        assert invariants.check_prediction_residency(hierarchy,
                                                     prediction) == []

    def test_evicted_entry_detected(self):
        hierarchy = FirstLevelPredictor(small_config())
        evicted = entry(0x100)
        prediction = self.make_prediction(evicted)
        problems = invariants.check_prediction_residency(hierarchy, prediction)
        assert any("absent" in problem for problem in problems)

    def test_equal_but_distinct_object_detected(self):
        # The pre-fix identity bug's signature: an equal clone resident
        # where the prediction's own object should be.
        hierarchy = FirstLevelPredictor(small_config())
        hierarchy.btb1.install(entry(0x100))
        prediction = self.make_prediction(entry(0x100))
        problems = invariants.check_prediction_residency(hierarchy, prediction)
        assert any("different object" in problem for problem in problems)

    def test_btbp_claim_without_btbp_detected(self):
        hierarchy = FirstLevelPredictor(small_config(btbp_enabled=False))
        prediction = self.make_prediction(entry(0x100),
                                          level=PredictionLevel.BTBP)
        problems = invariants.check_prediction_residency(hierarchy, prediction)
        assert any("no BTBP" in problem for problem in problems)


class TestSimulatorScan:
    def test_fresh_simulator_passes(self):
        assert invariants.check_simulator(Simulator(config=small_config())) == []

    def test_scan_composes_component_checks(self):
        simulator = Simulator(config=small_config())
        shared = entry(0x100)
        simulator.hierarchy.btb1.install(shared)
        simulator.btb2._rows[simulator.btb2.row_index(0x100)].append(shared)
        assert invariants.check_simulator(simulator)
