"""Fuzz-corpus wiring: named seed families and the planted-bug workflow.

The fuzz harness accepts a ``corpus`` selecting the trace seed family
(random program walks, adversarial BTB probes, or a parity mix); this
file checks the wiring and then proves the whole pipeline — corpus,
audited run, ddmin shrink — by planting an aliasing bug in the BTB's
install tag comparator and demanding the harness catch it and minimize
the failing trace.
"""

import pytest

from repro.audit.fuzz import (
    CORPUS_NAMES,
    FUZZ_CONFIGS,
    build_trace,
    corpus_builder,
    fuzz,
    render_failure,
    run_case,
    shrink,
)
from repro.btb.storage import BranchTargetBuffer
from repro.workloads.adversarial import corpus_trace

SMALL = {"small baseline": FUZZ_CONFIGS["small baseline"]}


class TestCorpusWiring:
    def test_known_corpus_names(self):
        assert CORPUS_NAMES == ("random", "adversarial", "mixed")

    def test_random_is_the_historical_builder(self):
        assert corpus_builder("random")(5, 120) == build_trace(5, 120)

    def test_adversarial_draws_from_the_probe_families(self):
        assert corpus_builder("adversarial")(5, 120) == corpus_trace(5, 120)

    def test_mixed_alternates_by_seed_parity(self):
        mixed = corpus_builder("mixed")
        assert mixed(4, 120) == build_trace(4, 120)
        assert mixed(5, 120) == corpus_trace(5, 120)

    def test_unknown_corpus_is_rejected(self):
        with pytest.raises(ValueError, match="random"):
            corpus_builder("chaotic")


class TestCampaigns:
    @pytest.mark.parametrize("corpus", CORPUS_NAMES)
    def test_small_campaign_runs_clean(self, corpus):
        assert fuzz(cases=4, seed=9, records=150, configs=SMALL,
                    corpus=corpus) == []


def _aliased_install(self, entry, *, make_mru=True):
    """Planted bug: the install tag comparator never matches, so a
    re-install of a resident branch address duplicates its tag."""
    ways = self._rows[(entry.address >> 5) % self.rows]
    ways.insert(0 if make_mru else len(ways), entry)
    victim = ways.pop() if len(ways) > self.ways else None
    if self.audit is not None:
        self.audit.on_btb_write(self, "install", ways)
    return victim


class TestPlantedAliasingBug:
    def test_adversarial_corpus_catches_and_shrinks_it(self, monkeypatch):
        monkeypatch.setattr(BranchTargetBuffer, "install", _aliased_install)
        config = FUZZ_CONFIGS["small baseline"]
        trace = corpus_builder("adversarial")(2, 350)
        violation = run_case(trace, config)
        assert violation is not None
        assert violation.check == "btb_row"
        assert "duplicate tag" in str(violation)
        shrunk = shrink(trace, config)
        assert 0 < len(shrunk) < len(trace)
        assert run_case(shrunk, config) is not None

    def test_fuzz_reports_a_shrunk_failure(self, monkeypatch):
        monkeypatch.setattr(BranchTargetBuffer, "install", _aliased_install)
        failures = fuzz(cases=1, seed=2, records=350, configs=SMALL,
                        corpus="adversarial")
        assert len(failures) == 1
        failure = failures[0]
        assert failure.check == "btb_row"
        assert 0 < len(failure.shrunk) < failure.trace_length
        report = render_failure(failure)
        assert "minimal trace:" in report
        assert failure.config_name in report

    def test_clean_again_once_the_bug_is_fixed(self):
        assert run_case(corpus_builder("adversarial")(2, 350),
                        FUZZ_CONFIGS["small baseline"]) is None
