"""Per-predictor golden baseline: the committed grid and its gate.

The committed ``tests/golden/predictors.json`` pins every registry entry
over the golden workload slate; the comparator must accept a faithful
re-measurement, reject a doctored cell, and flag a registry entry that
has no recorded block at all (new predictors must be pinned).
"""

import json

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.oracle.golden import GOLDEN_SCALE, GOLDEN_SCHEMA
from repro.predictors.golden import (
    GOLDEN_PREDICTOR_WORKLOADS,
    PREDICTOR_GOLDEN_PATH,
    build_predictor_baseline,
    compare_predictor_baseline,
    load_baseline,
    write_baseline,
)
from repro.predictors.registry import predictor_names

#: One cheap cell for the measured-gate tests: a single zoo predictor on
#: the shortest adversarial workload (floored at 4k records).
CELL_PREDICTORS = ("tage",)
CELL_WORKLOADS = ("adversarial/target-aliasing",)


@pytest.fixture(scope="module")
def baseline():
    return load_baseline(PREDICTOR_GOLDEN_PATH)


class TestCommittedBaseline:
    def test_document_shape(self, baseline):
        assert baseline["schema"] == GOLDEN_SCHEMA
        assert baseline["config"] == ZEC12_CONFIG_2.name
        assert baseline["scale"] == GOLDEN_SCALE
        assert baseline["tolerances"]["relative"] > 0

    def test_every_registry_entry_is_pinned(self, baseline):
        assert set(baseline["predictors"]) == set(predictor_names())

    def test_every_block_covers_the_golden_slate(self, baseline):
        for name, block in baseline["predictors"].items():
            assert set(block) == set(GOLDEN_PREDICTOR_WORKLOADS), name
            for workload, metrics in block.items():
                assert metrics["cpi"] > 0, (name, workload)
                assert metrics["instructions"] > 0, (name, workload)

    def test_slate_includes_adversarial_probes(self):
        adversarial = [workload for workload in GOLDEN_PREDICTOR_WORKLOADS
                       if workload.startswith("adversarial/")]
        assert len(adversarial) >= 2


class TestGate:
    def test_missing_predictor_block_is_a_problem(self, baseline):
        doctored = json.loads(json.dumps(baseline))
        del doctored["predictors"]["ldbp"]
        problems = compare_predictor_baseline(
            doctored, predictors=("ldbp",))
        assert len(problems) == 1
        assert "no golden baseline block" in problems[0]
        assert "ldbp" in problems[0]

    def test_accepts_faithful_and_rejects_doctored_cells(self, baseline):
        # Both comparisons measure the same single cell; the second is
        # served from the per-test result cache, so this costs one run.
        clean = compare_predictor_baseline(
            baseline, predictors=CELL_PREDICTORS, workloads=CELL_WORKLOADS)
        assert clean == []
        doctored = json.loads(json.dumps(baseline))
        doctored["predictors"]["tage"]["adversarial/target-aliasing"][
            "cpi"] *= 2
        problems = compare_predictor_baseline(
            doctored, predictors=CELL_PREDICTORS, workloads=CELL_WORKLOADS)
        assert any("tage/adversarial/target-aliasing" in problem
                   and "cpi" in problem for problem in problems)

    def test_round_trip_through_writer_and_loader(self, tmp_path, baseline):
        path = tmp_path / "predictors.json"
        write_baseline(path, baseline)
        assert load_baseline(path) == baseline


class TestBuilder:
    def test_builder_produces_a_complete_document(self, monkeypatch):
        # Stub the measurement: the builder's contract is document
        # assembly, not simulation (the committed file pins real numbers).
        from repro.predictors import golden

        monkeypatch.setattr(
            golden, "measure_predictors",
            lambda scale, config, jobs: {"paper": {"W": {"cpi": 1.0}}})
        document = build_predictor_baseline(scale=0.01)
        assert document["schema"] == GOLDEN_SCHEMA
        assert document["scale"] == 0.01
        assert document["predictors"] == {"paper": {"W": {"cpi": 1.0}}}
