"""Registry, factory, fingerprint, and cache-key tests for the zoo.

Two load-bearing compatibility properties live here:

* the paper adapter is *bit-identical* to driving the simulator directly
  (so ``predictor="paper"`` results equal every historical result), and
* fingerprints are append-only — ``predictor="paper"`` produces the
  historical cache key, any other registry entry a distinct one.
"""

from dataclasses import replace

import pytest

from repro.audit.fuzz import build_trace
from repro.core.config import ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING
from repro.engine.simulator import Simulator
from repro.experiments.common import run_fingerprint
from repro.experiments.pool import RunSpec
from repro.predictors.registry import (
    DEFAULT_PREDICTOR,
    create_predictor,
    predictor_info,
    predictor_names,
    register_predictor,
)
from repro.workloads.catalog import workload_by_name


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert predictor_names() == ("bullseye", "ldbp", "paper", "tage")
        assert DEFAULT_PREDICTOR == "paper"

    def test_info_resolves_every_name(self):
        for name in predictor_names():
            info = predictor_info(name)
            assert info.name == name
            assert info.summary

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError, match="bullseye, ldbp, paper, tage"):
            predictor_info("nope")

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_predictor("paper", "imposter", lambda *a, **k: None)

    def test_create_returns_named_instances(self):
        for name in predictor_names():
            predictor = create_predictor(name)
            assert predictor.name == name
            assert predictor.config is ZEC12_CONFIG_2


class TestModelFingerprints:
    def test_every_entry_has_a_distinct_fingerprint(self):
        prints = {create_predictor(name).model_fingerprint()
                  for name in predictor_names()}
        assert len(prints) == len(predictor_names())

    def test_fingerprint_is_stable_across_instances(self):
        for name in predictor_names():
            assert (create_predictor(name).model_fingerprint()
                    == create_predictor(name).model_fingerprint())

    def test_fingerprint_tracks_the_configuration(self):
        small = replace(ZEC12_CONFIG_2, btb1_rows=512, name="small")
        assert (create_predictor("tage").model_fingerprint()
                != create_predictor("tage",
                                    config=small).model_fingerprint())

    def test_paper_adapter_keeps_the_historical_fingerprint(self):
        # Cache compatibility: predictor="paper" must hit the same result
        # slots every pre-zoo run ever wrote.
        adapter = create_predictor("paper")
        simulator = Simulator(ZEC12_CONFIG_2, DEFAULT_TIMING)
        assert adapter.model_fingerprint() == simulator.model_fingerprint()


class TestPaperAdapterBitIdentity:
    def test_adapter_run_matches_the_simulator(self):
        trace = build_trace(9, 400)
        adapter = create_predictor("paper")
        simulator = Simulator(ZEC12_CONFIG_2, DEFAULT_TIMING)
        adapted = adapter.run(list(trace))
        direct = simulator.run(list(trace))
        assert adapted.counters.state_dict() == direct.counters.state_dict()
        assert adapter.state_dict() == simulator.state_dict()
        assert adapted.cpi == direct.cpi


class TestRunFingerprints:
    def test_paper_keeps_the_historical_cache_key(self):
        spec = workload_by_name("TPF")
        base = run_fingerprint(spec, ZEC12_CONFIG_2, DEFAULT_TIMING, 0.02)
        explicit = run_fingerprint(spec, ZEC12_CONFIG_2, DEFAULT_TIMING,
                                   0.02, predictor="paper")
        assert base == explicit

    def test_zoo_predictors_get_their_own_cache_slots(self):
        spec = workload_by_name("TPF")
        prints = {
            run_fingerprint(spec, ZEC12_CONFIG_2, DEFAULT_TIMING, 0.02,
                            predictor=name)
            for name in predictor_names()
        }
        assert len(prints) == len(predictor_names())

    def test_runspec_defaults_to_the_paper_stack(self):
        spec = RunSpec(workload=workload_by_name("TPF"),
                       config=ZEC12_CONFIG_2, scale=0.02)
        assert spec.predictor == "paper"
        assert spec.fingerprint() == replace(
            spec, predictor="paper").fingerprint()
        assert spec.fingerprint() != replace(
            spec, predictor="ldbp").fingerprint()
