"""Zoo lockstep differential oracle: clean runs, teeth, and shrinking.

The production zoo predictors and their independently written reference
models must agree branch for branch on random and adversarial traces;
the mutation drill proves the oracle notices a sabotaged replacement
policy; and a planted row-aliasing bug demonstrates the full workflow —
detect, then ddmin-shrink to a minimal still-diverging trace.
"""

from dataclasses import replace

import pytest

from repro.audit.fuzz import build_trace
from repro.core.config import ZEC12_CONFIG_2
from repro.predictors.base import SetAssociativeTable
from repro.predictors.differential import (
    ZooDivergence,
    ZooLockstepResult,
    lockstep,
    lockstep_names,
    mutation_drill,
    shrink_divergence,
)
from repro.workloads.adversarial import corpus_trace

#: Small BIT geometry: heavy eviction pressure on short traces.
SMALL = replace(ZEC12_CONFIG_2, btb1_rows=8, btb1_ways=2, name="small BIT")


class TestLockstep:
    def test_reference_models_cover_the_whole_zoo(self):
        assert lockstep_names() == ("bullseye", "ldbp", "tage")

    @pytest.mark.parametrize("name", lockstep_names())
    def test_random_trace_runs_clean(self, name):
        result = lockstep(name, build_trace(3, 400))
        assert not result.diverged
        assert result.branches > 0
        assert "no divergence" in result.report()

    @pytest.mark.parametrize("name", lockstep_names())
    def test_adversarial_trace_runs_clean(self, name):
        result = lockstep(name, corpus_trace(2, 400))
        assert not result.diverged

    @pytest.mark.parametrize("name", lockstep_names())
    def test_eviction_pressure_runs_clean(self, name):
        assert not lockstep(name, build_trace(5, 400), config=SMALL).diverged

    def test_paper_stack_is_refused(self):
        # The paper stack has its own event-level oracle; asking this one
        # for it must fail loudly, not silently compare nothing.
        with pytest.raises(ValueError, match="no zoo reference model"):
            lockstep("paper", build_trace(1, 50))

    def test_divergence_report_is_actionable(self):
        divergence = ZooDivergence(3, 0x4000, "taken", True, False)
        report = ZooLockstepResult(
            predictor="tage", records=4, branches=2, diverged=True,
            divergence=divergence).report()
        assert "record 3" in report
        assert "0x4000" in report
        assert "production=True" in report and "reference=False" in report


class TestMutationDrill:
    def test_oracle_catches_sabotaged_lru_promotion(self):
        assert mutation_drill() == []


class TestPlantedAliasingBug:
    def test_detect_then_shrink_to_minimal_trace(self, monkeypatch):
        # Plant a row-aliasing bug in the production BIT only: the row
        # index collapses two congruence classes, so eviction decisions
        # drift from the (unpatched) reference model.
        monkeypatch.setattr(
            SetAssociativeTable, "row_index",
            lambda self, address: (address >> self.shift) % (self.rows // 2))
        trace = build_trace(7, 500)
        result = lockstep("tage", trace, config=SMALL)
        assert result.diverged
        shrunk = shrink_divergence("tage", trace, config=SMALL)
        assert 0 < len(shrunk) < len(trace)
        assert lockstep("tage", shrunk, config=SMALL).diverged

    def test_clean_again_after_the_bug_is_fixed(self):
        assert not lockstep("tage", build_trace(7, 500),
                            config=SMALL).diverged
