"""Conformance battery, parametrized over every registry entry.

This is the enforcement point of the predictor contract: the battery in
``repro.predictors.conformance`` runs against *every* name the registry
exposes, so registering a new predictor without passing determinism,
checkpoint bit-identity, warm/detail parity, relabel invariance, and an
audit-clean run is impossible — the parametrization picks it up
automatically.
"""

import itertools

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING
from repro.predictors import registry
from repro.predictors.conformance import (
    CONFORMANCE_CHECKS,
    check_determinism,
    conformance_problems,
    conformance_trace,
)
from repro.predictors.registry import PredictorInfo, predictor_names
from repro.predictors.tage import TagePredictor


@pytest.fixture(scope="module")
def trace():
    """One shared battery trace (pure generation, no cache access)."""
    return conformance_trace()


class TestBattery:
    @pytest.mark.parametrize("check", list(CONFORMANCE_CHECKS))
    @pytest.mark.parametrize("name", predictor_names())
    def test_every_registry_entry_conforms(self, name, check, trace):
        problems = CONFORMANCE_CHECKS[check](
            name, trace, ZEC12_CONFIG_2, DEFAULT_TIMING)
        assert problems == []

    def test_trace_is_deterministic(self):
        assert conformance_trace(seed=3) == conformance_trace(seed=3)
        assert conformance_trace(seed=3) != conformance_trace(seed=4)

    def test_battery_covers_the_contract(self):
        assert list(CONFORMANCE_CHECKS) == [
            "determinism", "checkpoint", "warm-parity", "relabel",
            "audit-clean",
        ]


class _Flaky(TagePredictor):
    """Deliberately broken: every snapshot carries a fresh nonce."""

    _nonce = itertools.count()

    def state_dict(self):
        state = super().state_dict()
        state["nonce"] = next(self._nonce)
        return state


class TestBatteryTeeth:
    def test_problems_are_prefixed_with_the_check_name(
        self, monkeypatch, trace
    ):
        monkeypatch.setitem(
            CONFORMANCE_CHECKS, "determinism",
            lambda name, records, config, timing: ["boom"])
        problems = conformance_problems("tage", trace=list(trace)[:40])
        assert "determinism: boom" in problems


@pytest.fixture
def flaky_registered(monkeypatch):
    def factory(config, timing, *, audit=False, telemetry=None,
                engine_mode="object"):
        return _Flaky(config, timing, audit=audit, telemetry=telemetry)

    monkeypatch.setitem(
        registry._REGISTRY, "flaky",
        PredictorInfo("flaky", "broken on purpose (test double)", factory))


class TestBatteryTeethRegistered:
    def test_flaky_predictor_fails_determinism(self, flaky_registered):
        trace = conformance_trace(seed=5, length=60)
        problems = check_determinism(
            "flaky", trace, ZEC12_CONFIG_2, DEFAULT_TIMING)
        assert any("different model state" in problem
                   for problem in problems)

    def test_healthy_predictor_passes_the_same_check(self):
        trace = conformance_trace(seed=5, length=60)
        assert check_determinism(
            "tage", trace, ZEC12_CONFIG_2, DEFAULT_TIMING) == []
