"""The HTTP daemon end-to-end: parity, streaming, edge cases, drain.

Each fixture boots a real daemon on an ephemeral loopback port in a
background thread and talks to it with :class:`ServiceClient` (or a raw
socket, for the torn-connection cases the client cannot produce).
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.service import (
    ServiceClient,
    ServiceError,
    ServiceLimits,
    ServiceServer,
)
from repro.service.protocol import CONTENT_TYPE_BINARY, encode_records
from repro.telemetry.metrics import parse_prometheus
from repro.workloads.catalog import workload_by_name

LIMITS = ServiceLimits(chunk_records=512, sweep_interval=0.05)


class _Daemon:
    """A live daemon in a background thread, torn down on exit."""

    def __init__(self, tmp_path, limits=LIMITS, backend="thread",
                 spool=True):
        self.spool = str(tmp_path / "spool") if spool else None
        self._ready = threading.Event()
        self._limits = limits
        self._backend = backend
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        self.client = ServiceClient(port=self.server.port)
        self.client.wait_healthy()

    def _run(self):
        async def main():
            self.server = ServiceServer(
                port=0, limits=self._limits, backend=self._backend,
                jobs=2, spool=self.spool)
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server._shutdown.wait()
            await self.server.stop()

        asyncio.run(main())

    def stop(self):
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
            self._thread.join(30)
        assert not self._thread.is_alive()

    def raw(self, payload: bytes) -> None:
        """Open a raw connection, send ``payload``, and drop it."""
        with socket.create_connection(("127.0.0.1", self.server.port),
                                      timeout=5) as sock:
            sock.sendall(payload)
        # closing tears the connection mid-request


@pytest.fixture
def daemon(tmp_path):
    server = _Daemon(tmp_path)
    yield server
    server.stop()


def _trace(scale=0.01):
    return workload_by_name("Informix").trace(scale=scale)


def _expected(records):
    return simulate(records, config=ZEC12_CONFIG_2).counters.state_dict()


class TestLifecycleOverHttp:
    def test_parity_gate_stream_suspend_resume_close(self, daemon):
        """The acceptance gate: streamed counters == ``simulate``, with a
        suspend/resume cycle mid-trace changing nothing."""
        records = _trace()
        half = len(records) // 2
        client = daemon.client
        sid = client.create_session(config="2", label="parity")["id"]

        first = client.stream(sid, records[:half], chunk_records=700)
        assert first["accepted"] == half
        client.wait_processed(sid, half)
        assert client.suspend(sid)["state"] == "suspended"
        assert client.resume(sid)["state"] == "active"
        second = client.stream(sid, records[half:], chunk_records=700)
        assert second["accepted"] == len(records) - half

        closed = client.close_session(sid)
        assert closed["status"]["state"] == "closed"
        assert closed["result"]["counters"] == _expected(records)
        assert client.result(sid)["result"]["counters"] == _expected(records)

    def test_one_shot_binary_and_ndjson_agree(self, daemon):
        records = _trace(scale=0.004)
        client = daemon.client
        results = []
        for ndjson in (False, True):
            sid = client.create_session()["id"]
            accepted = client.ingest(sid, records, ndjson=ndjson)
            assert accepted["accepted"] == len(records)
            results.append(
                client.close_session(sid)["result"]["counters"])
        assert results[0] == results[1] == _expected(records)

    def test_restart_resume_from_spool(self, tmp_path):
        """Graceful drain suspends; a new daemon resumes bit-identically."""
        records = _trace(scale=0.006)
        half = len(records) // 2

        first = _Daemon(tmp_path)
        sid = first.client.create_session()["id"]
        first.client.stream(sid, records[:half])
        first.client.wait_processed(sid, half)
        first.client.shutdown()  # graceful drain -> suspend to spool
        first.stop()

        second = _Daemon(tmp_path)
        try:
            recreated = second.client.create_session(
                session_id=sid, resume=True)
            assert recreated["state"] == "suspended"
            second.client.resume(sid)
            second.client.stream(sid, records[half:])
            closed = second.client.close_session(sid)
            assert closed["result"]["counters"] == _expected(records)
        finally:
            second.stop()

    def test_listing_status_delete(self, daemon):
        client = daemon.client
        sid = client.create_session(label="visible")["id"]
        listed = client.list_sessions()
        assert [s["label"] for s in listed if s["id"] == sid] == ["visible"]
        status = client.session(sid)
        assert status["state"] == "active"
        assert status["processed_records"] == 0
        client.delete_session(sid)
        with pytest.raises(ServiceError) as excinfo:
            client.session(sid)
        assert excinfo.value.code == "unknown_session"

    def test_ingest_response_reports_cumulative_ingested(self, daemon):
        """``ingested`` is the session-lifetime total — what a client
        must wait on, since ``processed_records`` is cumulative too."""
        records = _trace(scale=0.002)
        client = daemon.client
        sid = client.create_session()["id"]
        first = client.ingest(sid, records)
        assert first["accepted"] == len(records)
        assert first["ingested"] == len(records)
        client.wait_processed(sid, first["ingested"])
        second = client.ingest(sid, records)
        assert second["accepted"] == len(records)
        assert second["ingested"] == 2 * len(records)
        status = client.wait_processed(sid, second["ingested"])
        assert status["processed_records"] == 2 * len(records)

    def test_reports_and_session_metrics(self, daemon):
        records = _trace(scale=0.004)
        client = daemon.client
        sid = client.create_session()["id"]
        client.stream(sid, records)
        client.wait_processed(sid, len(records))
        reports = client.reports(sid)
        assert sum(r["records"] for r in reports["reports"]) == len(records)
        metrics = client.session_metrics(sid)
        names = {metric["name"] for metric in metrics["metrics"]}
        assert "repro_session_processed_records_total" in names


class TestEdgeCases:
    """Satellite: malformed input never crashes the daemon."""

    def test_mid_record_connection_drop(self, daemon):
        """A client dying mid-record leaves the daemon healthy and the
        session intact with only complete records ingested."""
        records = _trace(scale=0.004)
        client = daemon.client
        sid = client.create_session()["id"]
        body = encode_records(records[:10])[:-7]  # tear mid-record 10
        daemon.raw(
            f"POST /sessions/{sid}/records HTTP/1.1\r\n"
            f"Host: x\r\nContent-Type: {CONTENT_TYPE_BINARY}\r\n"
            f"Content-Length: {len(body) + 13}\r\n\r\n".encode() + body)
        # Daemon is alive and the session still accepts work.
        assert client.health()["ok"]
        client.ingest(sid, records)
        assert client.close_session(sid)["status"]["state"] == "closed"

    def test_one_shot_body_ending_mid_record_is_typed_400(self, daemon):
        records = _trace(scale=0.004)
        client = daemon.client
        sid = client.create_session()["id"]
        torn = encode_records(records[:5])[:-3]
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", f"/sessions/{sid}/records", body=torn,
                            content_type=CONTENT_TYPE_BINARY)
        error = excinfo.value
        assert error.code == "partial_record"
        assert "4 complete record(s)" in error.message
        # The complete records before the tear were kept.
        assert client.session(sid)["ingested_records"] == 4

    def test_out_of_order_operations_are_typed_409(self, daemon):
        records = _trace(scale=0.002)
        client = daemon.client
        sid = client.create_session()["id"]
        with pytest.raises(ServiceError) as excinfo:
            client.resume(sid)  # resume before suspend
        assert excinfo.value.code == "invalid_state"
        client.ingest(sid, records)
        client.close_session(sid)
        with pytest.raises(ServiceError) as excinfo:
            client.ingest(sid, records)  # ingest after close
        assert excinfo.value.code == "invalid_state"
        with pytest.raises(ServiceError) as excinfo:
            client.suspend(sid)  # suspend after close
        assert excinfo.value.code == "invalid_state"

    def test_oversized_chunk_is_typed_413(self, daemon):
        client = daemon.client
        sid = client.create_session()["id"]
        too_big = LIMITS.max_chunk_bytes + 20
        head = (f"POST /sessions/{sid}/records HTTP/1.1\r\n"
                f"Host: x\r\nContent-Type: {CONTENT_TYPE_BINARY}\r\n"
                f"Transfer-Encoding: chunked\r\n\r\n"
                f"{too_big:x}\r\n").encode()
        with socket.create_connection(("127.0.0.1", daemon.server.port),
                                      timeout=5) as sock:
            sock.sendall(head)
            response = sock.recv(65536).decode()
        assert "413" in response.splitlines()[0]
        assert json.loads(response.split("\r\n\r\n", 1)[1])["error"][
            "code"] == "too_large"
        assert client.health()["ok"]

    def test_oversized_body_is_typed_413(self, daemon):
        client = daemon.client
        sid = client.create_session()["id"]
        head = (f"POST /sessions/{sid}/records HTTP/1.1\r\n"
                f"Host: x\r\nContent-Type: {CONTENT_TYPE_BINARY}\r\n"
                f"Content-Length: {LIMITS.max_body_bytes + 1}\r\n\r\n"
                ).encode()
        with socket.create_connection(("127.0.0.1", daemon.server.port),
                                      timeout=5) as sock:
            sock.sendall(head)
            response = sock.recv(65536).decode()
        assert "413" in response.splitlines()[0]

    def test_error_mid_chunked_body_drops_keep_alive(self, daemon):
        """An error answered before the body is consumed must close the
        connection: the unread body bytes would otherwise be parsed as
        the next request head, yielding spurious 400s."""
        client = daemon.client
        sid = client.create_session()["id"]
        payload = (f"POST /sessions/{sid}/records HTTP/1.1\r\n"
                   f"Host: x\r\nContent-Type: {CONTENT_TYPE_BINARY}\r\n"
                   f"Transfer-Encoding: chunked\r\n\r\n"
                   f"zz\r\n").encode()  # malformed chunk-size line
        with socket.create_connection(("127.0.0.1", daemon.server.port),
                                      timeout=5) as sock:
            sock.sendall(payload)
            data = b""
            while True:  # server must close; a retained keep-alive hangs
                got = sock.recv(65536)
                if not got:
                    break
                data += got
        assert b"400" in data.splitlines()[0]
        assert data.count(b"HTTP/1.1") == 1  # one response, then close
        assert client.health()["ok"]

    def test_trailing_slash_session_path_is_typed_404(self, daemon):
        client = daemon.client
        for path in ("/sessions/", "/sessions//records"):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", path)
            assert excinfo.value.code == "not_found"
        assert client.health()["ok"]

    def test_unknown_routes_and_malformed_json_are_typed(self, daemon):
        client = daemon.client
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.code == "not_found"
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/sessions", body=b"{not json")
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/sessions", body=b"[1,2]")
        assert excinfo.value.code == "bad_request"

    def test_malformed_ndjson_record_is_typed_400(self, daemon):
        client = daemon.client
        sid = client.create_session()["id"]
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", f"/sessions/{sid}/records",
                body=b'{"address": 1, "length": 9}\n',
                content_type="application/x-ndjson")
        assert excinfo.value.code == "bad_request"
        assert client.health()["ok"]


class TestBackpressureOverHttp:
    def test_one_shot_overflow_answers_429_with_retry_after(self, tmp_path):
        limits = ServiceLimits(queue_records=64, chunk_records=16,
                               sweep_interval=0.05)
        daemon = _Daemon(tmp_path, limits=limits)
        try:
            records = _trace(scale=0.002)
            sid = daemon.client.create_session()["id"]
            with pytest.raises(ServiceError) as excinfo:
                daemon.client.ingest(sid, records)
            error = excinfo.value
            assert error.status == 429
            assert error.code == "saturated"
            assert error.retry_after > 0
        finally:
            daemon.stop()

    def test_streaming_through_a_tiny_queue_completes(self, tmp_path):
        limits = ServiceLimits(queue_records=256, chunk_records=64,
                               sweep_interval=0.05)
        daemon = _Daemon(tmp_path, limits=limits)
        try:
            records = _trace(scale=0.004)
            sid = daemon.client.create_session()["id"]
            streamed = daemon.client.stream(sid, records, chunk_records=100)
            assert streamed["accepted"] == len(records)
            closed = daemon.client.close_session(sid)
            assert closed["result"]["counters"] == _expected(records)
        finally:
            daemon.stop()


class TestMetricsEndpoint:
    def test_prometheus_scrape_parses_and_counts(self, daemon):
        records = _trace(scale=0.004)
        client = daemon.client
        sid = client.create_session()["id"]
        client.stream(sid, records)
        client.wait_processed(sid, len(records))
        families = parse_prometheus(client.metrics_text())
        assert "repro_service_requests_total" in families
        assert "repro_service_sessions" in families
        records_total = families["repro_service_records_total"]
        assert sum(records_total["samples"].values()) == len(records)
        # Per-session series are merged into the scrape.
        assert "repro_session_processed_records_total" in families
