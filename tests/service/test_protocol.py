"""Service wire protocol: error taxonomy, record codecs, limits."""

import json

import pytest

from repro.isa.opcodes import BranchKind
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    encode_records,
    encode_records_ndjson,
    record_from_json,
    record_to_json,
)
from repro.trace.reader import TraceStreamDecoder
from repro.trace.record import TraceRecord

RECORDS = [
    TraceRecord(address=0x4000, length=4, kind=None),
    TraceRecord(address=0x4004, length=6, kind=BranchKind.COND,
                taken=True, target=0x5000),
    TraceRecord(address=0x5000, length=2, kind=BranchKind.CALL,
                taken=True, target=0x6000),
]


class TestServiceError:
    def test_taxonomy_is_stable(self):
        """(status, code) pairs are API: clients and tests switch on them."""
        cases = [
            (ServiceError.bad_request("x"), 400, "bad_request"),
            (ServiceError.partial_record(3, 7), 400, "partial_record"),
            (ServiceError.unknown_session("s"), 404, "unknown_session"),
            (ServiceError.not_found("/x"), 404, "not_found"),
            (ServiceError.invalid_state("x"), 409, "invalid_state"),
            (ServiceError.too_large("x"), 413, "too_large"),
            (ServiceError.saturated("x", retry_after=1.5), 429, "saturated"),
            (ServiceError.draining(), 503, "draining"),
            (ServiceError.internal("x"), 500, "internal"),
        ]
        for error, status, code in cases:
            assert error.status == status
            assert error.code == code
            payload = error.payload()
            assert payload["error"]["code"] == code
            assert payload["error"]["message"]
            json.dumps(payload)  # envelope is always JSON-serializable

    def test_retry_after_rides_the_envelope(self):
        error = ServiceError.saturated("full", retry_after=2.5)
        assert error.payload()["error"]["retry_after"] == 2.5
        assert "retry_after" not in \
            ServiceError.bad_request("x").payload()["error"]

    def test_partial_record_names_both_counts(self):
        error = ServiceError.partial_record(13, 42)
        assert "13" in error.message
        assert "42" in error.message


class TestLimits:
    def test_defaults_are_positive_and_frozen(self):
        limits = ServiceLimits()
        assert limits.queue_records > limits.chunk_records
        with pytest.raises(AttributeError):
            limits.queue_records = 1

    def test_nonpositive_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            ServiceLimits(queue_records=0)
        with pytest.raises(ValueError):
            ServiceLimits(max_chunk_bytes=-1)


class TestRecordCodecs:
    def test_json_round_trip(self):
        for record in RECORDS:
            assert record_from_json(record_to_json(record)) == record

    def test_binary_encoding_matches_stream_decoder(self):
        decoder = TraceStreamDecoder()
        assert decoder.feed(encode_records(RECORDS)) == RECORDS
        decoder.finish()

    def test_ndjson_encoding_is_line_per_record(self):
        lines = encode_records_ndjson(RECORDS).decode().splitlines()
        assert len(lines) == len(RECORDS)
        assert [record_from_json(json.loads(line)) for line in lines] \
            == RECORDS

    @pytest.mark.parametrize("payload, match", [
        ([1, 2], "JSON object"),
        ({"length": 4}, "missing required field"),
        ({"address": "x", "length": 4}, "must be integers"),
        ({"address": 1, "length": 4, "kind": "sideways"}, "unknown branch"),
        ({"address": 1, "length": 4, "taken": "yes"}, "must be a boolean"),
        ({"address": 1, "length": 4, "target": "there"}, "integer or null"),
    ])
    def test_malformed_json_records_are_typed_errors(self, payload, match):
        with pytest.raises(ServiceError, match=match) as excinfo:
            record_from_json(payload)
        assert excinfo.value.code == "bad_request"

    def test_semantically_invalid_records_are_typed_errors(self):
        # Passes field typing but fails TraceRecord.validate().
        payload = {"address": 1, "length": 3, "kind": "cond", "taken": False}
        with pytest.raises(ServiceError) as excinfo:
            record_from_json(payload)
        assert excinfo.value.status == 400
