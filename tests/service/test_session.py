"""SessionManager: multiplexing, parity, suspend/resume, backpressure."""

import asyncio

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import CheckpointStore
from repro.service.protocol import ServiceError, ServiceLimits
from repro.service.session import SessionManager
from repro.workloads.catalog import workload_by_name

LIMITS = ServiceLimits(chunk_records=512, sweep_interval=0.05)


def _trace(scale=0.01):
    return workload_by_name("Informix").trace(scale=scale)


def _expected(records):
    return simulate(records, config=ZEC12_CONFIG_2).counters.state_dict()


def _run(body, *, backend="serial", limits=LIMITS, store=None, jobs=2):
    """Run ``body(manager)`` inside a fresh event loop + manager."""
    async def main():
        manager = SessionManager(limits=limits, backend=backend, jobs=jobs,
                                 store=store)
        manager.start()
        try:
            return await body(manager)
        finally:
            await manager.stop(drain=False)

    return asyncio.run(main())


async def _feed_and_close(manager, records, **create_kwargs):
    session = manager.create(**create_kwargs)
    await manager.enqueue(session, records, wait=True)
    return await manager.close(session)


class TestParity:
    """The tentpole gate: service counters == ``simulate`` counters."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_streamed_counters_are_bit_identical(self, backend):
        records = _trace()

        async def body(manager):
            return await _feed_and_close(manager, records)

        result = _run(body, backend=backend)
        assert result["counters"] == _expected(records)

    def test_batched_engine_mode_parity(self):
        records = _trace()

        async def body(manager):
            return await _feed_and_close(manager, records,
                                         engine_mode="batched")

        result = _run(body)
        assert result["counters"] == _expected(records)

    def test_many_sessions_multiplex_independently(self):
        records = _trace()

        async def body(manager):
            sessions = [manager.create(label=f"s{i}") for i in range(4)]
            for session in sessions:
                await manager.enqueue(session, records, wait=True)
            return [await manager.close(s) for s in sessions]

        expected = _expected(records)
        for result in _run(body, backend="thread"):
            assert result["counters"] == expected


class TestSuspendResume:
    def test_mid_trace_suspend_resume_is_exact(self, tmp_path):
        """Suspend -> resume mid-stream reproduces the uninterrupted run."""
        records = _trace()
        half = len(records) // 2
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records[:half], wait=True)
            saved = await manager.suspend(session)
            assert session.state == "suspended"
            assert session.sim is None  # memory released
            assert saved["checkpoint"]
            await manager.resume(session)
            assert session.state == "active"
            await manager.enqueue(session, records[half:], wait=True)
            return await manager.close(session)

        result = _run(body, store=store)
        assert result["counters"] == _expected(records)

    def test_process_backend_suspend_resume_is_exact(self, tmp_path):
        records = _trace()
        third = len(records) // 3
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records[:third], wait=True)
            await manager.suspend(session)
            await manager.resume(session)
            await manager.enqueue(session, records[third:], wait=True)
            return await manager.close(session)

        result = _run(body, backend="process", store=store)
        assert result["counters"] == _expected(records)

    def test_suspend_without_spool_is_typed_409(self):
        async def body(manager):
            session = manager.create()
            with pytest.raises(ServiceError) as excinfo:
                await manager.suspend(session)
            assert excinfo.value.code == "invalid_state"
            assert session.state == "active"

        _run(body, store=None)

    def test_resume_before_suspend_is_typed_409(self, tmp_path):
        async def body(manager):
            session = manager.create()
            with pytest.raises(ServiceError) as excinfo:
                await manager.resume(session)
            assert excinfo.value.code == "invalid_state"

        _run(body, store=CheckpointStore(tmp_path))

    def test_resume_with_pruned_checkpoint_is_typed_409(self, tmp_path):
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.suspend(session)
            store.clear()  # the spool was pruned behind our back
            with pytest.raises(ServiceError) as excinfo:
                await manager.resume(session)
            assert excinfo.value.code == "invalid_state"
            assert "checkpoint" in excinfo.value.message

        _run(body, store=store)

    def test_close_auto_resumes_a_suspended_session(self, tmp_path):
        records = _trace()
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            await manager.suspend(session)
            return await manager.close(session)

        result = _run(body, store=store)
        assert result["counters"] == _expected(records)

    def test_restart_recreate_then_resume(self, tmp_path):
        """A new manager (daemon restart) resumes from the shared spool."""
        records = _trace()
        half = len(records) // 2
        store = CheckpointStore(tmp_path)
        sid_holder = {}

        async def first(manager):
            session = manager.create()
            sid_holder["id"] = session.id
            await manager.enqueue(session, records[:half], wait=True)
            await manager.suspend(session)

        _run(first, store=store)

        async def second(manager):
            session = manager.create(session_id=sid_holder["id"],
                                     resume=True)
            assert session.state == "suspended"
            await manager.resume(session)
            await manager.enqueue(session, records[half:], wait=True)
            return await manager.close(session)

        result = _run(second, store=store)
        assert result["counters"] == _expected(records)


class TestLifecycleErrors:
    def test_ingest_after_close_is_typed_409(self):
        records = _trace(scale=0.002)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            await manager.close(session)
            with pytest.raises(ServiceError) as excinfo:
                await manager.enqueue(session, records, wait=False)
            assert excinfo.value.code == "invalid_state"
            # Closing twice is equally deterministic.
            with pytest.raises(ServiceError) as again:
                await manager.close(session)
            assert again.value.code == "invalid_state"

        _run(body)

    def test_unknown_session_is_typed_404(self):
        async def body(manager):
            with pytest.raises(ServiceError) as excinfo:
                manager.get("nope")
            assert excinfo.value.code == "unknown_session"

        _run(body)

    def test_bad_config_and_engine_are_typed_400(self):
        async def body(manager):
            with pytest.raises(ServiceError) as excinfo:
                manager.create(config_key="9")
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServiceError) as excinfo:
                manager.create(engine_mode="warp")
            assert excinfo.value.code == "bad_request"

        _run(body)

    def test_session_table_cap_is_429(self):
        limits = ServiceLimits(chunk_records=512, max_sessions=2)

        async def body(manager):
            manager.create()
            manager.create()
            with pytest.raises(ServiceError) as excinfo:
                manager.create()
            assert excinfo.value.code == "saturated"
            assert excinfo.value.retry_after is not None

        _run(body, limits=limits)

    def test_duplicate_session_id_is_typed_409(self):
        async def body(manager):
            session = manager.create()
            with pytest.raises(ServiceError) as excinfo:
                manager.create(session_id=session.id)
            assert excinfo.value.code == "invalid_state"

        _run(body)

    def test_chunk_crash_fails_the_session_not_the_daemon(self, monkeypatch):
        import repro.service.session as session_module

        records = _trace(scale=0.002)
        original = session_module._advance_chunk

        def exploding(task):
            return session_module._ChunkOutcome(
                session_id=task.session_id, records=len(task.records),
                error="RuntimeError: engine exploded")

        monkeypatch.setattr(session_module, "_advance_chunk", exploding)

        async def body(manager):
            doomed = manager.create()
            await manager.enqueue(doomed, records, wait=True)
            await manager._wait_drained(doomed)
            assert doomed.state == "failed"
            assert "exploded" in doomed.error
            with pytest.raises(ServiceError) as excinfo:
                await manager.close(doomed)
            assert excinfo.value.status in (409, 500)
            # The daemon itself is healthy: a new session still works.
            monkeypatch.setattr(session_module, "_advance_chunk", original)
            healthy = manager.create()
            await manager.enqueue(healthy, records, wait=True)
            return await manager.close(healthy)

        result = _run(body)
        assert result["counters"] == _expected(records)


class TestBackpressure:
    def test_one_shot_overflow_is_429_with_retry_after(self):
        limits = ServiceLimits(queue_records=64, chunk_records=16)
        records = _trace(scale=0.002)

        async def body(manager):
            session = manager.create()
            with pytest.raises(ServiceError) as excinfo:
                await manager.enqueue(session, records, wait=False)
            error = excinfo.value
            assert error.code == "saturated"
            assert error.status == 429
            assert error.retry_after > 0
            # Nothing was half-ingested: a retry cannot double-count.
            assert session.ingested == 0

        _run(body, limits=limits)

    def test_streaming_ingest_blocks_instead_of_failing(self):
        """wait=True rides the dispatcher: a tiny queue still drains all."""
        limits = ServiceLimits(queue_records=64, chunk_records=16,
                               sweep_interval=0.05)
        records = _trace(scale=0.005)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            return await manager.close(session)

        result = _run(body, limits=limits)
        assert result["counters"] == _expected(records)


class TestHousekeeping:
    def test_idle_session_is_evicted_to_the_spool(self, tmp_path):
        limits = ServiceLimits(chunk_records=512, idle_timeout=0.05,
                               sweep_interval=0.05)
        records = _trace(scale=0.002)
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            await manager._wait_drained(session)
            deadline = asyncio.get_running_loop().time() + 5.0
            while session.state != "suspended":
                assert asyncio.get_running_loop().time() < deadline, \
                    "idle session was never evicted"
                await asyncio.sleep(0.05)
            assert session.evictions == 1
            # Eviction is transparent: resume + close still finishes.
            await manager.resume(session)
            return await manager.close(session)

        result = _run(body, limits=limits, store=store)
        assert result["counters"] == _expected(records)

    def test_reports_expose_chunk_progress(self):
        records = _trace(scale=0.005)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            await manager._wait_drained(session)
            first = manager.poll_reports(session)
            assert first["reports"]
            assert sum(r["records"] for r in first["reports"]) \
                == len(records)
            assert all(r["cpi"] > 0 for r in first["reports"])
            # ``since`` filters strictly-after.
            last_seq = first["reports"][-1]["seq"]
            assert manager.poll_reports(session, since=last_seq)["reports"] \
                == []
            return await manager.close(session)

        _run(body)

    def test_suspend_during_failed_drain_is_typed_error(self, monkeypatch,
                                                        tmp_path):
        """A chunk crashing during the suspending drain must surface as a
        typed error and a failed session — never a snapshot of the
        corrupted mid-chunk state presented as 'suspended'."""
        import repro.service.session as session_module

        records = _trace(scale=0.002)

        def exploding(task):
            return session_module._ChunkOutcome(
                session_id=task.session_id, records=len(task.records),
                error="RuntimeError: engine exploded")

        monkeypatch.setattr(session_module, "_advance_chunk", exploding)
        store = CheckpointStore(tmp_path)

        async def body(manager):
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            with pytest.raises(ServiceError) as excinfo:
                await manager.suspend(session)
            assert excinfo.value.code == "invalid_state"
            assert session.state == "failed"
            assert "exploded" in session.error
            # No corrupt checkpoint was spooled: resume has nothing.
            with pytest.raises(ServiceError):
                await manager.resume(session)

        _run(body, store=store)

    def test_stop_drains_despite_live_streaming_ingest(self, tmp_path):
        """Graceful drain must not deadlock under a kept-open stream: the
        feeder gets a typed 503 and stop() completes with everything
        already accepted simulated and suspended."""
        records = _trace(scale=0.005)
        store = CheckpointStore(tmp_path)
        limits = ServiceLimits(queue_records=64, chunk_records=16,
                               sweep_interval=0.05)

        async def body():
            manager = SessionManager(limits=limits, backend="serial",
                                     jobs=2, store=store)
            manager.start()
            session = manager.create()
            outcome = {}

            async def feeder():
                try:
                    while True:
                        await manager.enqueue(session, records[:32],
                                              wait=True)
                except ServiceError as error:
                    outcome["code"] = error.code

            task = asyncio.get_running_loop().create_task(feeder())
            await asyncio.sleep(0.2)  # let the stream saturate the queue
            await asyncio.wait_for(manager.stop(drain=True), timeout=60)
            await asyncio.wait_for(task, timeout=10)
            assert outcome["code"] == "draining"
            assert session.state == "suspended"
            assert session.processed == session.ingested
            # New ingest is refused outright while stopped.
            with pytest.raises(ServiceError) as excinfo:
                await manager.enqueue(session, records[:1], wait=False)
            assert excinfo.value.code == "draining"

        asyncio.run(body())

    def test_wait_drained_fails_fast_without_a_dispatcher(self):
        """A drain that nothing can service raises instead of hanging."""
        records = _trace(scale=0.002)

        async def body():
            manager = SessionManager(limits=LIMITS, backend="serial",
                                     jobs=1)
            # Dispatcher never started; queued records will never move.
            session = manager.create()
            await manager.enqueue(session, records, wait=True)
            with pytest.raises(ServiceError) as excinfo:
                await asyncio.wait_for(manager._wait_drained(session),
                                       timeout=10)
            assert excinfo.value.code == "internal"

        asyncio.run(body())

    def test_graceful_stop_drains_and_suspends(self, tmp_path):
        """stop(drain=True): queued records simulate, state hits the spool."""
        records = _trace(scale=0.005)
        store = CheckpointStore(tmp_path)
        sid_holder = {}

        async def body():
            manager = SessionManager(limits=LIMITS, backend="serial",
                                     jobs=2, store=store)
            manager.start()
            session = manager.create()
            sid_holder["id"] = session.id
            await manager.enqueue(session, records, wait=True)
            await manager.stop(drain=True)
            assert session.processed == len(records)
            assert session.state == "suspended"

        asyncio.run(body())

        # The spool outlives the manager: a fresh one resumes and closes.
        async def after():
            manager = SessionManager(limits=LIMITS, backend="serial",
                                     jobs=2, store=store)
            manager.start()
            try:
                session = manager.create(session_id=sid_holder["id"],
                                         resume=True)
                await manager.resume(session)
                return await manager.close(session)
            finally:
                await manager.stop(drain=False)

        result = asyncio.run(after())
        assert result["counters"] == _expected(records)
