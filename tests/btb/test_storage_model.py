"""Model-based property test: BTB storage vs a plain-Python reference.

The reference model is an ordered dict per congruence class with explicit
LRU order — deliberately naive.  Hypothesis drives both implementations
with the same operation sequences and compares observable state after
every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btb.entry import BTBEntry
from repro.btb.storage import BranchTargetBuffer

ROWS, WAYS = 4, 2

# Halfword-aligned addresses over a few congruence classes.
addresses = st.integers(min_value=0, max_value=0x3FF).map(lambda v: v * 2)


class ReferenceBTB:
    """Naive reference: per-row list of addresses, MRU first."""

    def __init__(self):
        self.rows = {}

    def _row(self, address):
        return (address >> 5) % ROWS

    def install(self, address):
        row = self.rows.setdefault(self._row(address), [])
        if address in row:
            row.remove(address)
            row.insert(0, address)
            return None
        row.insert(0, address)
        victim = row.pop() if len(row) > WAYS else None
        return victim

    def touch(self, address):
        row = self.rows.get(self._row(address), [])
        if address in row:
            row.remove(address)
            row.insert(0, address)

    def demote(self, address):
        row = self.rows.get(self._row(address), [])
        if address in row:
            row.remove(address)
            row.append(address)

    def remove(self, address):
        row = self.rows.get(self._row(address), [])
        if address in row:
            row.remove(address)
            return address
        return None

    def contents(self):
        return {addr for row in self.rows.values() for addr in row}


operations = st.lists(
    st.tuples(
        st.sampled_from(["install", "touch", "demote", "remove"]), addresses
    ),
    max_size=120,
)


@settings(max_examples=200)
@given(operations)
def test_storage_matches_reference(ops):
    btb = BranchTargetBuffer(rows=ROWS, ways=WAYS)
    reference = ReferenceBTB()
    for op, address in ops:
        if op == "install":
            victim = btb.install(BTBEntry(address=address, target=1))
            ref_victim = reference.install(address)
            assert (victim.address if victim else None) == ref_victim
        elif op == "touch":
            entry = btb.lookup(address)
            if entry is not None:
                btb.touch(entry)
            reference.touch(address)
        elif op == "demote":
            entry = btb.lookup(address)
            if entry is not None:
                btb.demote(entry)
            reference.demote(address)
        else:
            removed = btb.remove(address)
            ref_removed = reference.remove(address)
            assert (removed.address if removed else None) == ref_removed
        assert {entry.address for entry in btb} == reference.contents()


@settings(max_examples=100)
@given(operations)
def test_search_row_consistent_with_lookup(ops):
    btb = BranchTargetBuffer(rows=ROWS, ways=WAYS)
    for op, address in ops:
        if op == "install":
            btb.install(BTBEntry(address=address, target=1))
    for entry in btb:
        found = btb.search_row(entry.address)
        assert entry in found
        assert btb.lookup(entry.address) is entry
