"""Tests for the concrete BTB levels: BTB1, BTBP, BTB2 protocols."""

from repro.btb.btb1 import BTB1
from repro.btb.btb2 import BTB2
from repro.btb.btbp import BTBP, WriteSource
from repro.btb.entry import BTBEntry


def entry(address, target=0x9999):
    return BTBEntry(address=address, target=target)


class TestBTB1:
    def test_architected_geometry(self):
        btb1 = BTB1()
        assert btb1.rows == 1024
        assert btb1.ways == 4
        assert btb1.capacity == 4096


class TestBTBP:
    def test_architected_geometry(self):
        btbp = BTBP()
        assert btbp.rows == 128
        assert btbp.ways == 6
        assert btbp.capacity == 768

    def test_write_sources_counted(self):
        btbp = BTBP()
        btbp.write(entry(0x100), WriteSource.SURPRISE)
        btbp.write(entry(0x104), WriteSource.BTB2_HIT)
        btbp.write(entry(0x108), WriteSource.BTB2_HIT)
        btbp.write(entry(0x10C), WriteSource.BTB1_VICTIM)
        assert btbp.writes_by_source[WriteSource.SURPRISE] == 1
        assert btbp.writes_by_source[WriteSource.BTB2_HIT] == 2
        assert btbp.writes_by_source[WriteSource.BTB1_VICTIM] == 1
        assert btbp.writes_by_source[WriteSource.PRELOAD_INSTRUCTION] == 0

    def test_write_returns_victim_when_row_full(self):
        btbp = BTBP(rows=2, ways=1)
        first = entry(0x100)
        btbp.write(first, WriteSource.SURPRISE)
        victim = btbp.write(entry(0x104), WriteSource.SURPRISE)
        assert victim is first


class TestBTB2SemiExclusive:
    def test_architected_geometry(self):
        btb2 = BTB2()
        assert btb2.rows == 4096
        assert btb2.ways == 6
        assert btb2.capacity == 24576

    def test_transfer_row_clones_and_demotes(self):
        btb2 = BTB2(rows=8, ways=2)
        a, b = entry(0x100), entry(0x104)
        btb2.install(a)
        btb2.install(b)  # MRU=b
        clones = btb2.transfer_row(0x100)
        assert [c.address for c in clones] == [0x100, 0x104]
        assert all(c is not original for c, original in zip(clones, (a, b)))
        # Both originals were demoted to LRU: the next two installs in the
        # row must evict them.
        v1 = btb2.install(entry(0x108))
        v2 = btb2.install(entry(0x10C))
        assert {v1.address, v2.address} <= {0x100, 0x104}

    def test_transfer_hit_counter(self):
        btb2 = BTB2(rows=8, ways=2)
        btb2.install(entry(0x100))
        btb2.transfer_row(0x100)
        assert btb2.transfer_hits == 1

    def test_victim_write_installs_mru(self):
        btb2 = BTB2(rows=8, ways=2)
        btb2.write_victim(entry(0x100))
        assert btb2.victim_writes == 1
        assert btb2.lookup(0x100) is not None

    def test_surprise_write_stores_clone(self):
        btb2 = BTB2(rows=8, ways=2)
        original = entry(0x100)
        btb2.write_surprise(original)
        stored = btb2.lookup(0x100)
        assert stored is not original
        assert stored == original
        assert btb2.surprise_writes == 1

    def test_transferred_clone_trains_independently(self):
        # The exclusive-design freshness argument: the first level trains
        # its own copy; the BTB2 copy is untouched until write-back.
        btb2 = BTB2(rows=8, ways=2)
        btb2.install(entry(0x100, target=0x200))
        (clone,) = btb2.transfer_row(0x100)
        clone.update_target(0x300)
        assert btb2.lookup(0x100).target == 0x200
