"""Tests for the surprise BHT, PHT, CTB, FIT and path history."""

from repro.btb.ctb import CTB
from repro.btb.fit import FIT
from repro.btb.history import (
    CTB_ADDRESS_DEPTH,
    DIRECTION_DEPTH,
    PathHistory,
)
from repro.btb.pht import PHT
from repro.btb.surprise import SurpriseBHT
from repro.isa.opcodes import BranchKind


class TestSurpriseBHT:
    def test_fresh_table_uses_static_rule(self):
        bht = SurpriseBHT(entries=1024)
        assert bht.guess(0x100, BranchKind.COND, backward=True)
        assert not bht.guess(0x100, BranchKind.COND, backward=False)

    def test_always_taken_kinds_guessed_taken(self):
        bht = SurpriseBHT(entries=1024)
        for kind in (BranchKind.UNCOND, BranchKind.CALL, BranchKind.RETURN,
                     BranchKind.INDIRECT):
            assert bht.guess(0x100, kind, backward=False)

    def test_learned_direction_overrides_static(self):
        bht = SurpriseBHT(entries=1024)
        bht.update(0x100, BranchKind.COND, taken=True)
        assert bht.guess(0x100, BranchKind.COND, backward=False)
        bht.update(0x100, BranchKind.COND, taken=False)
        assert not bht.guess(0x100, BranchKind.COND, backward=True)

    def test_unconditional_kinds_do_not_train(self):
        bht = SurpriseBHT(entries=1024)
        bht.update(0x100, BranchKind.UNCOND, taken=True)
        # The slot stays untrained: conditional guess still static.
        assert not bht.guess(0x100, BranchKind.COND, backward=False)

    def test_tagless_aliasing(self):
        bht = SurpriseBHT(entries=16)
        bht.update(0x100, BranchKind.COND, taken=True)
        aliased = 0x100 + 16 * 2  # same slot (halfword-indexed)
        assert bht.guess(aliased, BranchKind.COND, backward=False)

    def test_accuracy_counter(self):
        bht = SurpriseBHT(entries=16)
        bht.guess(0x100, BranchKind.COND, backward=False)
        bht.record_outcome(guessed=False, taken=False)
        assert bht.accuracy == 1.0

    def test_rejects_non_power_of_two(self):
        import pytest

        with pytest.raises(ValueError):
            SurpriseBHT(entries=100)


class TestPathHistory:
    def test_direction_window_depth(self):
        history = PathHistory()
        for i in range(DIRECTION_DEPTH + 5):
            history.record(0x100 + i * 2, taken=True)
        directions, _ = history.snapshot()
        assert len(directions) == DIRECTION_DEPTH

    def test_taken_address_window_depth(self):
        history = PathHistory()
        for i in range(CTB_ADDRESS_DEPTH + 5):
            history.record(0x100 + i * 2, taken=True)
        _, addresses = history.snapshot()
        assert len(addresses) == CTB_ADDRESS_DEPTH

    def test_not_taken_does_not_enter_address_window(self):
        history = PathHistory()
        history.record(0x100, taken=False)
        _, addresses = history.snapshot()
        assert addresses == ()

    def test_snapshot_restore_roundtrip(self):
        history = PathHistory()
        history.record(0x100, True)
        history.record(0x200, False)
        state = history.snapshot()
        history.record(0x300, True)
        history.restore(state)
        assert history.snapshot() == state

    def test_indices_depend_on_direction_history(self):
        a, b = PathHistory(), PathHistory()
        a.record(0x100, True)
        b.record(0x100, False)
        assert a.pht_index(4096) != b.pht_index(4096)

    def test_ctb_index_depends_on_path_order(self):
        a, b = PathHistory(), PathHistory()
        a.record(0x100, True)
        a.record(0x200, True)
        b.record(0x200, True)
        b.record(0x100, True)
        assert a.ctb_index(2048) != b.ctb_index(2048)

    def test_indices_in_range(self):
        history = PathHistory()
        for i in range(30):
            history.record(0x100 + 2 * i, taken=bool(i % 2))
            assert 0 <= history.pht_index(4096) < 4096
            assert 0 <= history.ctb_index(2048) < 2048


class TestPHT:
    def test_cold_pht_declines(self):
        pht = PHT(entries=64)
        assert pht.predict(0x100, PathHistory()) is None

    def test_learns_direction_for_path(self):
        pht = PHT(entries=64)
        history = PathHistory()
        history.record(0x50, True)
        pht.update(0x100, history, taken=False)
        pht.update(0x100, history, taken=False)
        assert pht.predict(0x100, history) is False

    def test_tag_mismatch_declines(self):
        pht = PHT(entries=64)
        history = PathHistory()
        pht.update(0x100, history, taken=True)
        assert pht.predict(0x100 + 0x10, history) is None  # different tag

    def test_distinguishes_paths(self):
        pht = PHT(entries=4096)
        taken_path, not_taken_path = PathHistory(), PathHistory()
        taken_path.record(0x50, True)
        not_taken_path.record(0x50, False)
        pht.update(0x100, taken_path, taken=True)
        pht.update(0x100, taken_path, taken=True)
        pht.update(0x100, not_taken_path, taken=False)
        pht.update(0x100, not_taken_path, taken=False)
        assert pht.predict(0x100, taken_path) is True
        assert pht.predict(0x100, not_taken_path) is False

    def test_reallocation_on_tag_conflict(self):
        pht = PHT(entries=1)
        history = PathHistory()
        pht.update(0x100, history, taken=True)
        pht.update(0x100 + 2, history, taken=False)  # conflicting tag
        assert pht.predict(0x100 + 2, history) is False


class TestCTB:
    def test_cold_ctb_declines(self):
        assert CTB(entries=64).predict(0x100, PathHistory()) is None

    def test_learns_target_for_path(self):
        ctb = CTB(entries=64)
        history = PathHistory()
        history.record(0x50, True)
        ctb.update(0x100, history, target=0x4242)
        assert ctb.predict(0x100, history) == 0x4242

    def test_peek_does_not_count(self):
        ctb = CTB(entries=64)
        history = PathHistory()
        ctb.update(0x100, history, target=0x4242)
        ctb.peek(0x100, history)
        assert ctb.tag_hits == 0 and ctb.tag_misses == 0

    def test_path_sensitivity(self):
        ctb = CTB(entries=2048)
        path_a, path_b = PathHistory(), PathHistory()
        path_a.record(0x50, True)
        path_b.record(0x60, True)
        ctb.update(0x100, path_a, target=0xAAAA)
        ctb.update(0x100, path_b, target=0xBBBB)
        assert ctb.predict(0x100, path_a) == 0xAAAA
        assert ctb.predict(0x100, path_b) == 0xBBBB


class TestFIT:
    def test_cold_probe_misses(self):
        fit = FIT(entries=4)
        assert not fit.probe(0x100)
        assert fit.misses == 1

    def test_trained_probe_hits(self):
        fit = FIT(entries=4)
        fit.train(0x100, next_index_hint=7)
        assert fit.probe(0x100)
        assert fit.hits == 1

    def test_lru_eviction_at_capacity(self):
        fit = FIT(entries=2)
        fit.train(0x100, 0)
        fit.train(0x200, 0)
        fit.train(0x300, 0)  # evicts 0x100
        assert 0x100 not in fit
        assert 0x200 in fit and 0x300 in fit

    def test_probe_refreshes_recency(self):
        fit = FIT(entries=2)
        fit.train(0x100, 0)
        fit.train(0x200, 0)
        fit.probe(0x100)  # refresh
        fit.train(0x300, 0)  # evicts 0x200
        assert 0x100 in fit
        assert 0x200 not in fit

    def test_architected_capacity(self):
        fit = FIT()
        assert fit.entries == 64
