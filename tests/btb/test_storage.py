"""Tests for the shared row-organized BTB storage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.btb.entry import BTBEntry
from repro.btb.storage import BranchTargetBuffer
from repro.isa.address import BTB1_INDEX, ROW_BYTES


def entry(address, target=0x9999):
    return BTBEntry(address=address, target=target)


def make_btb(rows=8, ways=2):
    return BranchTargetBuffer(rows=rows, ways=ways)


class TestGeometry:
    def test_capacity(self):
        assert make_btb(rows=1024, ways=4).capacity == 4096

    def test_row_index_matches_paper_bitfield(self):
        btb = make_btb(rows=1024)
        for address in (0x0, 0x1234_5678, 0xFFFF_FFFF, 0xABC_DEF0_1234):
            assert btb.row_index(address) == BTB1_INDEX.extract(address)

    @pytest.mark.parametrize("rows", (0, 3, -8))
    def test_bad_rows_rejected(self, rows):
        with pytest.raises(ValueError):
            make_btb(rows=rows)

    def test_bad_ways_rejected(self):
        with pytest.raises(ValueError):
            make_btb(ways=0)


class TestLookupAndSearch:
    def test_lookup_finds_installed(self):
        btb = make_btb()
        e = entry(0x100)
        btb.install(e)
        assert btb.lookup(0x100) is e

    def test_lookup_misses_absent(self):
        assert make_btb().lookup(0x100) is None

    def test_search_row_returns_all_in_row_sorted(self):
        btb = make_btb()
        late = entry(0x118)
        early = entry(0x104)
        btb.install(late)
        btb.install(early)
        assert btb.search_row(0x100) == [early, late]

    def test_search_row_excludes_aliasing_rows(self):
        btb = make_btb(rows=8)
        aliased = 0x100 + 8 * ROW_BYTES  # same congruence class, other row
        btb.install(entry(aliased))
        assert btb.search_row(0x100) == []
        assert btb.search_row(aliased) == [btb.lookup(aliased)]

    def test_contains(self):
        btb = make_btb()
        btb.install(entry(0x100))
        assert 0x100 in btb
        assert 0x104 not in btb


class TestReplacement:
    def test_install_evicts_lru(self):
        btb = make_btb(rows=8, ways=2)
        a, b, c = entry(0x100), entry(0x104), entry(0x108)
        btb.install(a)
        btb.install(b)
        victim = btb.install(c)
        assert victim is a

    def test_touch_protects_from_eviction(self):
        btb = make_btb(rows=8, ways=2)
        a, b, c = entry(0x100), entry(0x104), entry(0x108)
        btb.install(a)
        btb.install(b)
        btb.touch(a)
        victim = btb.install(c)
        assert victim is b

    def test_demote_makes_entry_next_victim(self):
        btb = make_btb(rows=8, ways=2)
        a, b, c = entry(0x100), entry(0x104), entry(0x108)
        btb.install(a)
        btb.install(b)  # MRU=b
        btb.demote(b)
        victim = btb.install(c)
        assert victim is b

    def test_reinstall_same_address_replaces_without_victim(self):
        btb = make_btb(rows=8, ways=2)
        old = entry(0x100, target=0x1)
        new = entry(0x100, target=0x2)
        btb.install(old)
        victim = btb.install(new)
        assert victim is None
        assert btb.lookup(0x100).target == 0x2
        assert len(btb) == 1

    def test_is_mru(self):
        btb = make_btb(rows=8, ways=2)
        a, b = entry(0x100), entry(0x104)
        btb.install(a)
        btb.install(b)
        assert btb.is_mru(b)
        assert not btb.is_mru(a)

    def test_remove(self):
        btb = make_btb()
        e = entry(0x100)
        btb.install(e)
        assert btb.remove(0x100) is e
        assert btb.remove(0x100) is None

    def test_clear(self):
        btb = make_btb()
        btb.install(entry(0x100))
        btb.clear()
        assert len(btb) == 0

    def test_counters(self):
        btb = make_btb(rows=8, ways=1)
        btb.install(entry(0x100))
        btb.install(entry(0x104))
        assert btb.installs == 2
        assert btb.evictions == 1


class TestIdentitySemantics:
    """``touch``/``demote`` match by identity, consistent with ``is_mru``.

    Entries cross BTB levels as equal-but-distinct clones; recency
    operations handed such a clone must not displace the resident object
    (the pre-fix equality match replaced it, leaving a stale foreign
    object resident — and could even insert one object into two rows).
    """

    def test_touch_with_equal_clone_is_noop(self):
        btb = make_btb(rows=8, ways=2)
        resident, other = entry(0x100), entry(0x104)
        btb.install(resident)
        btb.install(other)  # MRU=other
        btb.touch(entry(0x100))  # clone, equal to ``resident``
        assert btb.lookup(0x100) is resident
        assert btb.is_mru(other)  # recency unchanged

    def test_touch_promotes_the_resident_object_itself(self):
        btb = make_btb(rows=8, ways=2)
        resident, other = entry(0x100), entry(0x104)
        btb.install(resident)
        btb.install(other)
        btb.touch(resident)
        assert btb.is_mru(resident)
        assert btb.lookup(0x100) is resident

    def test_demote_with_equal_clone_is_noop(self):
        btb = make_btb(rows=8, ways=2)
        a, b = entry(0x100), entry(0x104)
        btb.install(a)
        btb.install(b)  # MRU=b, LRU=a
        btb.demote(entry(0x104))  # clone of the MRU entry
        assert btb.is_mru(b)
        assert btb.lookup(0x104) is b

    def test_clone_touch_never_duplicates_an_object(self):
        # Pre-fix failure shape: remove-by-equality then insert-by-reference
        # could leave the *same object* in the row twice via two clones.
        btb = make_btb(rows=8, ways=4)
        resident = entry(0x100)
        btb.install(resident)
        btb.install(entry(0x104))
        btb.touch(entry(0x100))
        btb.demote(entry(0x100))
        row = btb._rows[btb.row_index(0x100)]
        assert len(row) == len({id(e) for e in row}) == 2

    def test_touch_of_evicted_entry_is_noop(self):
        btb = make_btb(rows=8, ways=1)
        evicted = entry(0x100)
        btb.install(evicted)
        btb.install(entry(0x104))  # evicts ``evicted``
        btb.touch(evicted)
        btb.demote(evicted)
        assert btb.lookup(0x100) is None
        assert btb.lookup(0x104) is not None


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=0x7FF).map(lambda v: v * 2),
                    max_size=300))
    def test_occupancy_bounded(self, addresses):
        btb = make_btb(rows=4, ways=2)
        for address in addresses:
            btb.install(entry(address))
        assert len(btb) <= btb.capacity
        assert 0.0 <= btb.occupancy() <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=0x7FF).map(lambda v: v * 2),
                    max_size=300))
    def test_most_recent_install_present(self, addresses):
        btb = make_btb(rows=4, ways=2)
        for address in addresses:
            btb.install(entry(address))
            assert btb.lookup(address) is not None

    @given(st.lists(st.integers(min_value=0, max_value=0x7FF).map(lambda v: v * 2),
                    min_size=1, max_size=300))
    def test_no_duplicate_addresses(self, addresses):
        btb = make_btb(rows=4, ways=2)
        for address in addresses:
            btb.install(entry(address))
        stored = [e.address for e in btb]
        assert len(stored) == len(set(stored))
