"""Tests for BTB entries: bimodal counter, PHT/CTB control bits, confidence."""

from hypothesis import given
from hypothesis import strategies as st

from repro.btb.entry import (
    BTBEntry,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)
from repro.isa.opcodes import BranchKind


def entry(**kwargs):
    defaults = dict(address=0x100, target=0x200)
    defaults.update(kwargs)
    return BTBEntry(**defaults)


class TestBimodal:
    def test_fresh_entry_predicts_taken(self):
        assert entry().predict_taken

    def test_counter_saturates_up(self):
        e = entry(counter=STRONG_TAKEN)
        e.update_direction(True)
        assert e.counter == STRONG_TAKEN

    def test_counter_saturates_down(self):
        e = entry(counter=STRONG_NOT_TAKEN)
        e.update_direction(False)
        assert e.counter == STRONG_NOT_TAKEN

    def test_two_not_takens_flip_prediction(self):
        e = entry(counter=STRONG_TAKEN)
        e.update_direction(False)
        assert e.predict_taken
        e.update_direction(False)
        e.update_direction(False)
        assert not e.predict_taken

    def test_hysteresis(self):
        e = entry(counter=WEAK_TAKEN)
        e.update_direction(False)
        assert e.counter == WEAK_NOT_TAKEN

    @given(st.lists(st.booleans(), max_size=60))
    def test_counter_stays_in_range(self, outcomes):
        e = entry()
        for taken in outcomes:
            e.update_direction(taken)
            assert STRONG_NOT_TAKEN <= e.counter <= STRONG_TAKEN


class TestPHTEnable:
    def test_single_mispredict_does_not_enable(self):
        e = entry(counter=STRONG_TAKEN)
        e.update_direction(False)
        assert not e.use_pht

    def test_accumulated_mispredicts_enable(self):
        # Non-consecutive misses still count: loop-exit behaviour.
        e = entry(counter=STRONG_TAKEN)
        e.update_direction(False)  # miss 1
        e.update_direction(True)
        e.update_direction(True)
        e.update_direction(True)
        e.update_direction(False)  # miss 2 -> PHT
        assert e.use_pht

    def test_use_pht_is_sticky(self):
        e = entry(use_pht=True)
        for _ in range(10):
            e.update_direction(True)
        assert e.use_pht


class TestTargetAndCTB:
    def test_stable_target_keeps_ctb_off(self):
        e = entry()
        for _ in range(5):
            e.update_target(0x200)
        assert not e.use_ctb

    def test_changing_target_enables_ctb(self):
        e = entry()
        e.update_target(0x300)
        assert e.use_ctb
        assert e.target == 0x300

    def test_return_kind_enables_ctb_on_first_change(self):
        e = entry(kind=BranchKind.RETURN)
        e.update_target(0x400)
        assert e.use_ctb

    def test_trust_ctb_requires_confidence(self):
        e = entry(use_ctb=True, ctb_confidence=2)
        assert e.trust_ctb
        e.update_ctb_confidence(False)
        assert not e.trust_ctb

    def test_confidence_saturates(self):
        e = entry()
        for _ in range(6):
            e.update_ctb_confidence(True)
        assert e.ctb_confidence == 3
        for _ in range(6):
            e.update_ctb_confidence(False)
        assert e.ctb_confidence == 0

    def test_confidence_recovers(self):
        e = entry(use_ctb=True, ctb_confidence=0)
        e.update_ctb_confidence(True)
        e.update_ctb_confidence(True)
        assert e.trust_ctb


class TestClone:
    def test_clone_is_deep_and_equal(self):
        e = entry(use_pht=True, use_ctb=True, counter=STRONG_TAKEN,
                  ctb_confidence=1)
        c = e.clone()
        assert c is not e
        assert c == e

    def test_clone_diverges_independently(self):
        e = entry()
        c = e.clone()
        c.update_direction(False)
        c.update_direction(False)
        assert e.counter == WEAK_TAKEN
        assert c.counter != e.counter
