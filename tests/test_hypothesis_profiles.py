"""The pinned Hypothesis profiles (registered in ``tests/conftest.py``)."""

import pytest

hypothesis = pytest.importorskip("hypothesis")


def test_ci_profile_is_derandomized():
    ci = hypothesis.settings.get_profile("ci")
    assert ci.derandomize is True
    assert ci.print_blob is True


def test_dev_profile_prints_failure_blobs():
    dev = hypothesis.settings.get_profile("dev")
    assert dev.derandomize is False
    assert dev.print_blob is True


def test_a_registered_profile_is_active():
    # conftest loads "ci" under CI, "dev" otherwise; either way the active
    # settings must print reproduction blobs.
    assert hypothesis.settings.default.print_blob is True
