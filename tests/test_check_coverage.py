"""The coverage-ratchet gate (`scripts/check_coverage.py`), pinned.

The script itself consumes coverage.py's JSON report, so these tests
fabricate reports — no coverage tooling required locally.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_coverage  # noqa: E402  (path set up above)


def write_report(path: Path, percent: float) -> None:
    path.write_text(json.dumps({"totals": {"percent_covered": percent}}))


def write_floor(path: Path, percent: float) -> None:
    path.write_text(json.dumps({"minimum_percent": percent}))


def run(tmp_path: Path, measured: float, floor: float,
        extra: list[str] | None = None) -> tuple[int, Path]:
    report = tmp_path / "coverage.json"
    floor_file = tmp_path / "floor.json"
    write_report(report, measured)
    write_floor(floor_file, floor)
    code = check_coverage.main(
        ["--report", str(report), "--floor-file", str(floor_file)]
        + (extra or [])
    )
    return code, floor_file


def test_above_floor_passes(tmp_path):
    assert run(tmp_path, measured=75.0, floor=60.0)[0] == 0


def test_below_floor_fails(tmp_path, capsys):
    code, _ = run(tmp_path, measured=59.9, floor=60.0)
    assert code == 1
    assert "below the committed floor" in capsys.readouterr().err


def test_missing_report_is_distinct_exit_code(tmp_path):
    floor_file = tmp_path / "floor.json"
    write_floor(floor_file, 60.0)
    code = check_coverage.main(
        ["--report", str(tmp_path / "nope.json"),
         "--floor-file", str(floor_file)]
    )
    assert code == 2


def test_update_ratchets_up_with_margin(tmp_path):
    code, floor_file = run(tmp_path, measured=80.0, floor=60.0,
                           extra=["--update"])
    assert code == 0
    new_floor = check_coverage.read_floor(floor_file)
    assert new_floor == 80.0 - check_coverage.UPDATE_MARGIN


def test_update_never_lowers_the_floor(tmp_path):
    code, floor_file = run(tmp_path, measured=55.0, floor=60.0,
                           extra=["--update"])
    assert code == 0
    assert check_coverage.read_floor(floor_file) == 60.0


def test_committed_floor_is_valid():
    floor = check_coverage.read_floor()
    assert 0.0 < floor <= 100.0
