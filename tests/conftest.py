"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is optional locally
    pass
else:
    # Pinned example-generation behavior for the property-based tests:
    # CI runs derandomized (the same examples every run, so a red build
    # is reproducible from its log alone), while local runs explore new
    # examples but always print the @reproduce_failure blob on failure.
    settings.register_profile("ci", derandomize=True, print_blob=True)
    settings.register_profile("dev", print_blob=True)
    settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture(autouse=True)
def _isolated_caches(monkeypatch, tmp_path):
    """Keep trace/result caches out of the repository during tests."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path / "results"))
    monkeypatch.delenv("REPRO_SCALE", raising=False)


BASE = 0x1000_0000


def straightline(start: int, count: int, length: int = 4) -> list[TraceRecord]:
    """``count`` sequential non-branch records from ``start``."""
    return [
        TraceRecord(address=start + i * length, length=length)
        for i in range(count)
    ]


def branch(
    address: int,
    taken: bool,
    target: int | None = None,
    kind: BranchKind = BranchKind.COND,
    length: int = 4,
) -> TraceRecord:
    """One branch record."""
    return TraceRecord(
        address=address, length=length, kind=kind, taken=taken, target=target
    )


def loop_trace(
    iterations: int,
    body: int = 4,
    start: int = BASE,
    length: int = 4,
) -> list[TraceRecord]:
    """A simple counted loop: ``body`` instructions then a backward branch.

    The branch is taken ``iterations - 1`` times and falls through once.
    """
    records: list[TraceRecord] = []
    branch_address = start + body * length
    for iteration in range(iterations):
        records.extend(straightline(start, body, length))
        taken = iteration < iterations - 1
        records.append(
            branch(branch_address, taken=taken, target=start if taken else None)
        )
    return records


def assert_contiguous(records: list[TraceRecord]) -> None:
    """Assert control-flow continuity: each record leads to the next."""
    for current, following in zip(records, records[1:]):
        assert current.next_address == following.address, (
            f"discontinuity: {current.address:#x} -> {current.next_address:#x} "
            f"but next record at {following.address:#x}"
        )
