"""Edge-case and robustness tests for the simulator."""

from repro.core.config import PredictorConfig
from repro.core.events import OutcomeKind
from repro.engine.simulator import Simulator, simulate
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

from tests.conftest import branch, loop_trace, straightline

BASE = 0x1000_0000


def small_config(**overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=2,
        btb2_rows=256, btb2_ways=4, pht_entries=256, ctb_entries=256,
        fit_entries=8, surprise_bht_entries=1024,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestContextSwitches:
    def test_discontinuity_detected_and_survived(self):
        # Two unrelated streams glued together without a bridging branch.
        trace = straightline(BASE, 50) + straightline(BASE + 0x4000_0000, 50)
        result = simulate(trace, config=small_config())
        assert result.counters.context_switches == 1
        assert result.counters.instructions == 100

    def test_backward_discontinuity(self):
        trace = straightline(BASE + 0x10_0000, 50) + straightline(BASE, 50)
        result = simulate(trace, config=small_config())
        assert result.counters.context_switches == 1

    def test_contiguous_trace_has_no_switches(self):
        result = simulate(loop_trace(iterations=30), config=small_config())
        assert result.counters.context_switches == 0

    def test_predictor_state_survives_switches(self):
        # The same loop on both sides of a context switch: the second
        # instance still benefits from the learned entry.
        trace = loop_trace(iterations=40) + \
            straightline(BASE + 0x4000_0000, 20) + loop_trace(iterations=40)
        result = simulate(trace, config=small_config())
        assert result.counters.outcomes[OutcomeKind.SURPRISE_COMPULSORY] == 1

    def test_switch_forces_refetch_even_within_the_same_line(self):
        # A discontinuity back into the line being fetched must still go
        # through the I-cache: the old stream's fetch state is dead.  The
        # pre-fix simulator kept ``_current_line`` across the switch and
        # skipped the fetch entirely.
        simulator = Simulator(config=small_config())
        for record in straightline(BASE, 4):
            simulator.step(record)
        assert simulator.icache.hits == 0  # one demand miss, then in-line
        for record in straightline(BASE, 4):  # jumps back: context switch
            simulator.step(record)
        assert simulator.counters.context_switches == 1
        assert simulator.icache.hits == 1  # line genuinely re-fetched

    def test_switch_drops_stale_prefetch_attributions(self):
        # A prefetch launched by the old context must not attribute a
        # hidden/partially-hidden miss after a context switch: the new
        # context never launched it.  Pre-fix, the in-flight fill survived
        # the switch and charged an ``icache_partial_miss`` wait.
        target = BASE + 0x8000
        other = BASE + 0x4000_0000
        trace = (
            straightline(BASE, 2)
            + [branch(BASE + 8, taken=True, target=target)]
            + straightline(other, 2)     # switch: the taken edge never ran
            + straightline(target, 2)    # switch back into the prefetched line
        )
        result = simulate(trace, config=small_config())
        assert result.counters.context_switches == 2
        assert result.counters.icache_partially_hidden_misses == 0
        assert result.counters.icache_hidden_misses == 0


class TestLineFillPruning:
    def test_prune_drops_only_evicted_lines(self):
        # The fill book-keeping prune must not discard pending hidden-miss
        # attributions for lines still resident in the I-cache.  The
        # pre-fix prune dropped every *completed* fill, so a later fetch of
        # a prefetched resident line lost its ``icache_hidden_misses``
        # credit.
        simulator = Simulator(config=small_config())
        simulator.LINE_FILL_PRUNE_LIMIT = 4
        resident = BASE + 0x10_0000
        simulator.icache.prefetch(resident)
        simulator._line_fills[resident] = 1.0  # long since completed
        for index in range(5):  # stale fills: lines the icache never kept
            simulator._line_fills[BASE + 0x20_0000 + index * 0x100] = 1.0
        simulator._prefetch_target(BASE + 0x30_0000, 0.0)  # triggers prune
        assert resident in simulator._line_fills
        assert all(
            simulator.icache.contains(line)
            for line in simulator._line_fills
        )

    def test_pruned_survivor_still_attributes_hidden_miss(self):
        simulator = Simulator(config=small_config())
        simulator.LINE_FILL_PRUNE_LIMIT = 4
        resident = BASE + 0x10_0000
        simulator.icache.prefetch(resident)
        simulator._line_fills[resident] = 0.25  # completes before decode
        for index in range(5):
            simulator._line_fills[BASE + 0x20_0000 + index * 0x100] = 1.0
        simulator._prefetch_target(BASE + 0x30_0000, 0.0)
        for record in straightline(resident, 2):
            simulator.step(record)
        assert simulator.counters.icache_hidden_misses == 1


class TestEmptyAndTiny:
    def test_empty_trace(self):
        result = simulate([], config=small_config())
        assert result.counters.instructions == 0
        assert result.cpi == 0.0

    def test_single_record(self):
        result = simulate([TraceRecord(address=BASE, length=4)],
                          config=small_config())
        assert result.counters.instructions == 1

    def test_single_branch(self):
        result = simulate(
            [branch(BASE, taken=True, target=BASE + 0x40,
                    kind=BranchKind.UNCOND),
             TraceRecord(address=BASE + 0x40, length=4)],
            config=small_config(),
        )
        assert result.counters.branches == 1


class TestIndirectAndReturnKinds:
    def test_return_branch_surprise_uses_resolution_penalty(self):
        trace = straightline(BASE, 4) + [
            branch(BASE + 16, taken=True, target=BASE + 0x500,
                   kind=BranchKind.RETURN)
        ] + straightline(BASE + 0x500, 4)
        result = simulate(trace, config=small_config())
        # Register-indirect target: the full resolution penalty applies.
        assert result.counters.penalty_cycles["surprise"] >= 18.0

    def test_relative_taken_surprise_uses_decode_penalty(self):
        trace = straightline(BASE, 4) + [
            branch(BASE + 16, taken=True, target=BASE + 0x500,
                   kind=BranchKind.UNCOND)
        ] + straightline(BASE + 0x500, 4)
        result = simulate(trace, config=small_config())
        assert result.counters.penalty_cycles["surprise"] == 8.0

    def test_changing_return_targets_engage_ctb(self):
        # One return site alternating between two call sites A and B, with
        # distinct paths to each: the CTB learns both targets.
        records = []
        ret = BASE + 0x800
        for call_site, resume in ((BASE, BASE + 0x14), (BASE + 0x40, BASE + 0x54)):
            for _ in range(30):
                records.extend(straightline(call_site, 4))
                records.append(branch(call_site + 16, taken=True, target=ret,
                                      kind=BranchKind.CALL))
                records.extend(straightline(ret, 2))
                records.append(branch(ret + 8, taken=True, target=resume,
                                      kind=BranchKind.RETURN))
                records.extend(straightline(resume, 2))
                records.append(branch(resume + 8, taken=True, target=call_site,
                                      kind=BranchKind.UNCOND))
        sim = Simulator(config=small_config())
        for record in records:
            sim.step(record)
        result = sim.finish()
        entry = sim.hierarchy.btb1.lookup(ret + 8) or \
            sim.hierarchy.btbp.lookup(ret + 8)
        assert entry is not None
        assert entry.use_ctb
        # Within each phase the target is stable and the CTB-or-bimodal
        # target is mostly right: wrong-target mispredicts stay rare.
        wrong = result.counters.outcomes[OutcomeKind.MISPREDICT_WRONG_TARGET]
        assert wrong < 10


class TestDeterminismAcrossConfigs:
    def test_rerun_identical(self):
        trace = loop_trace(iterations=100, body=6)
        first = simulate(trace, config=small_config())
        second = simulate(trace, config=small_config())
        assert first.counters.cycles == second.counters.cycles
        assert first.counters.penalty_cycles == second.counters.penalty_cycles

    def test_btb2_config_does_not_mutate_trace(self):
        trace = loop_trace(iterations=50)
        snapshot = list(trace)
        simulate(trace, config=small_config())
        assert trace == snapshot


class TestDecodeMissReportingIntegration:
    def _cold_taken_chain(self):
        records = []
        for hop in range(12):
            start = BASE + hop * 0x140
            records.extend(straightline(start, 4))
            records.append(branch(start + 16, taken=True,
                                  target=BASE + (hop + 1) * 0x140,
                                  kind=BranchKind.UNCOND))
        records.extend(straightline(BASE + 12 * 0x140, 4))
        return records

    def test_flag_enables_decode_reports(self):
        sim = Simulator(config=small_config(decode_miss_reporting=True))
        sim.run(self._cold_taken_chain())
        assert sim.preload.decode_miss_reports > 0

    def test_default_has_no_decode_reports(self):
        sim = Simulator(config=small_config())
        sim.run(self._cold_taken_chain())
        assert sim.preload.decode_miss_reports == 0
