"""Pins for the functional-warming fast paths.

``Simulator.warm_run`` and ``BTB2.transfer_span`` are loop-hoisted rewrites
of ``warm_step`` / ``transfer_row``; the sampling subsystem's accuracy rests
on them being *behaviorally identical* to the originals.  These tests pin
that equivalence over real and generated workloads, and the incremental
path-history folds against their reference implementation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btb.btb2 import BTB2
from repro.btb.entry import BTBEntry
from repro.btb.history import (
    CTB_ADDRESS_DEPTH,
    PHT_ADDRESS_DEPTH,
    PathHistory,
)
from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.isa.address import ROW_BYTES
from repro.isa.opcodes import BranchKind
from repro.workloads.catalog import workload_by_name
from repro.workloads.generator import WalkProfile, generate_trace
from repro.workloads.program import ProgramShape, build_program


def small_config():
    return PredictorConfig(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=128,
    )


def test_warm_run_equals_warm_step_on_catalog_trace():
    trace = workload_by_name("TPF").trace(scale=0.05)
    bulk = Simulator(config=ZEC12_CONFIG_2)
    stepped = Simulator(config=ZEC12_CONFIG_2)
    bulk.warm_run(iter(trace))
    for record in trace:
        stepped.warm_step(record)
    assert bulk.state_dict() == stepped.state_dict()


def test_warm_run_is_resumable_mid_trace():
    """Two warm_run calls over halves equal one call over the whole."""
    trace = workload_by_name("Informix").trace(scale=0.05)
    split = len(trace) // 3
    once = Simulator(config=ZEC12_CONFIG_2)
    twice = Simulator(config=ZEC12_CONFIG_2)
    once.warm_run(iter(trace))
    twice.warm_run(iter(trace[:split]))
    twice.warm_run(iter(trace[split:]))
    assert once.state_dict() == twice.state_dict()


def test_warm_resume_from_state_dict_is_engine_agnostic():
    """Warm-from-checkpoint parity across engines.

    The checkpoint-parallel fan-out snapshots ``state_dict()`` mid-trace
    and resumes workers that may run either engine.  Both engines warming
    the remainder from the *same* restored state must land on the same
    state, and that state must equal never having checkpointed at all.
    """
    trace = workload_by_name("Informix").trace(scale=0.05)
    split = len(trace) // 3

    producer = Simulator(config=ZEC12_CONFIG_2)
    for record in trace[:split]:
        producer.step(record)  # detailed stepping, as the producer does
    snapshot = producer.state_dict()

    resumed_object = Simulator(config=ZEC12_CONFIG_2, engine_mode="object")
    resumed_object.load_state_dict(snapshot)
    resumed_object.warm_run(iter(trace[split:]))

    resumed_batched = Simulator(config=ZEC12_CONFIG_2, engine_mode="batched")
    resumed_batched.load_state_dict(snapshot)
    resumed_batched.warm_run(iter(trace[split:]))

    assert resumed_object.state_dict() == resumed_batched.state_dict()


def test_detailed_resume_from_state_dict_matches_serial_across_engines():
    """Detailed stepping after a restore is engine-independent too: the
    parallel workers' measured slices are bit-identical whichever engine
    constructed the simulator."""
    trace = workload_by_name("TPF").trace(scale=0.05)
    split = len(trace) // 2

    serial = Simulator(config=ZEC12_CONFIG_2)
    reference = serial.run(trace)

    producer = Simulator(config=ZEC12_CONFIG_2)
    for record in trace[:split]:
        producer.step(record)
    snapshot = producer.state_dict()

    for engine_mode in ("object", "batched"):
        resumed = Simulator(config=ZEC12_CONFIG_2, engine_mode=engine_mode)
        resumed.load_state_dict(snapshot)
        for record in trace[split:]:
            resumed.step(record)
        result = resumed.finish()
        assert result.counters.state_dict() == \
            reference.counters.state_dict(), engine_mode
        assert result.cpi == reference.cpi


@st.composite
def workloads(draw):
    shape = ProgramShape(
        functions=draw(st.integers(min_value=2, max_value=20)),
        blocks_per_function=(2, 6),
        instructions_per_block=(1, 4),
        call_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        loop_fraction=draw(st.floats(min_value=0.0, max_value=0.4)),
        seed=draw(st.integers(min_value=0, max_value=2**12)),
    )
    profile = WalkProfile(
        uniform_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        max_call_depth=3,
        max_loop_iterations=8,
        seed=draw(st.integers(min_value=0, max_value=2**12)),
    )
    return generate_trace(build_program(shape), 400, profile)


@settings(max_examples=15, deadline=None)
@given(workloads())
def test_warm_run_equals_warm_step_property(trace):
    bulk = Simulator(config=small_config())
    stepped = Simulator(config=small_config())
    bulk.warm_run(iter(trace))
    for record in trace:
        stepped.warm_step(record)
    assert bulk.state_dict() == stepped.state_dict()


def _populated_btb2(seed: int = 9) -> BTB2:
    btb2 = BTB2(rows=64, ways=2)
    rng = random.Random(seed)
    for _ in range(300):
        address = rng.randrange(0, 1 << 16)
        btb2.install(BTBEntry(address=address, target=address ^ 0x40,
                              kind=BranchKind.COND))
    return btb2


def test_transfer_span_equals_repeated_transfer_row():
    reference = _populated_btb2()
    fast = BTB2(rows=64, ways=2)
    fast.load_state_dict(reference.state_dict())

    start = 0x2000
    row_count = 128  # a full 4 KB block's worth, wrapping the 64-row array
    row_by_row = []
    for step in range(row_count):
        row_by_row.extend(reference.transfer_row(start + step * ROW_BYTES))
    spanned = fast.transfer_span(start, row_count)

    assert [e.state_dict() for e in spanned] == \
        [e.state_dict() for e in row_by_row]
    assert fast.state_dict() == reference.state_dict()


def test_transfer_block_covers_the_whole_block():
    btb2 = _populated_btb2(seed=4)
    entries = btb2.transfer_block(0x1000)
    for entry in entries:
        assert 0x1000 <= entry.address < 0x2000


def _reference_history(history: PathHistory) -> tuple[int, int, int]:
    bits = 0
    for bit in history._directions:
        bits = (bits << 1) | int(bit)
    return (bits,
            history._fold_addresses(PHT_ADDRESS_DEPTH),
            history._fold_addresses(CTB_ADDRESS_DEPTH))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**48),
                          st.booleans()),
                max_size=60))
def test_incremental_history_folds_match_reference(events):
    history = PathHistory()
    for address, taken in events:
        history.record(address, taken)
        assert (history._dir_bits, history._pht_fold, history._ctb_fold) == \
            _reference_history(history)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**48),
                          st.booleans()),
                min_size=2, max_size=40),
       st.data())
def test_history_folds_survive_snapshot_restore(events, data):
    history = PathHistory()
    cut = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
    for address, taken in events[:cut]:
        history.record(address, taken)
    snapshot = history.snapshot()
    for address, taken in events[cut:]:
        history.record(address, taken)
    history.restore(snapshot)
    assert (history._dir_bits, history._pht_fold, history._ctb_fold) == \
        _reference_history(history)
    # Indices derived from the folds match a freshly rebuilt history.
    rebuilt = PathHistory()
    rebuilt.restore(snapshot)
    assert history.pht_index(64) == rebuilt.pht_index(64)
    assert history.ctb_index(64) == rebuilt.ctb_index(64)
