"""Batched-engine equivalence: escape boundaries, parity, golden gate.

The batched engine (:mod:`repro.engine.batched`) must be bit-identical to
the object engine.  This suite enforces that three ways:

* **Escape-boundary lockstep** — a reference object simulator is stepped
  to every escape the batched run takes, and the two full ``state_dict()``
  snapshots must match *at each boundary*, not just at the end.  The
  traces are crafted to force each escape class mid-chunk: surprise
  branches, perceived-miss reports, context switches landing on a branch,
  and transfer-engine activity from demand i-cache misses.
* **Whole-run parity** — detailed and warm runs over real catalog traces
  under all three Table 3 configurations.
* **Metamorphic golden check** — ``engine_mode="batched"`` must leave the
  committed golden baselines bit-identical (the gate the CI smoke runs).
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)
from repro.engine.batched import (
    CHUNK_RECORDS,
    ENGINE_MODES,
    BatchedSimulator,
    resolve_engine_mode,
    validate_engine_mode,
)
from repro.engine.simulator import Simulator
from repro.sampling import SamplingPlan, run_sampled
from repro.telemetry import Telemetry, Tracer
from repro.workloads.catalog import workload_by_name
from tests.conftest import BASE, branch, loop_trace, straightline

CONFIGS = (ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3)


def lockstep_escapes(trace, config):
    """Run ``trace`` batched, checking object-engine parity at each escape.

    Returns the batched run's escape counts.  The reference simulator is
    advanced to each escape index before comparing, so any fast-path
    divergence is pinned to the exact record where it first happened.
    """
    ref = Simulator(config=config)
    sim = Simulator(config=config)
    batched = BatchedSimulator(sim)
    position = 0

    def hook(index: int, reason: str) -> None:
        nonlocal position
        for record in trace[position:index]:
            ref.step(record)
        position = index
        assert ref.state_dict() == sim.state_dict(), (
            f"state diverged at escape index {index} ({reason})"
        )

    batched.escape_hook = hook
    batched.feed(trace)
    for record in trace[position:]:
        ref.step(record)
    assert ref.state_dict() == sim.state_dict(), "state diverged at run end"
    return batched.escape_counts


class TestEscapeBoundaries:
    def test_surprise_branches_escape_and_match(self):
        # A fresh loop: the first encounter of the branch is a surprise
        # (no BTB content), later iterations ride the fast path.
        counts = lockstep_escapes(loop_trace(50, body=12), ZEC12_CONFIG_2)
        assert counts.get("no_prediction", 0) >= 1

    def test_context_switch_onto_branch_escapes(self):
        # A discontinuity landing directly on a branch record cannot be
        # classified by the fast path (the object engine restarts the
        # searcher first); it must escape.
        segment = []
        for i in range(6):
            start = BASE + i * 0x4000_0000
            segment += straightline(start, 30)
            # The switch target is itself a branch record: the previous
            # record's next-address does not lead here.
            landing = start + 0x5000
            segment.append(branch(landing, taken=True, target=landing + 64))
            segment += straightline(landing + 64, 20)
        counts = lockstep_escapes(segment, ZEC12_CONFIG_2)
        assert counts.get("context_switch_branch", 0) >= 1

    def test_long_empty_gap_escapes_as_miss_report(self):
        # A branch far beyond the search point forces the gap walk over
        # more than ``miss_limit`` empty rows: the object engine emits a
        # perceived-miss report mid-walk, so the fast path must escape.
        sim = Simulator(config=ZEC12_CONFIG_2)
        gap_rows = sim.search.miss_limit + 2
        trace = []
        for repeat_index in range(4):
            trace += straightline(BASE, gap_rows * 8)  # 8 records per row
            far = BASE + gap_rows * 8 * 4
            trace.append(branch(far, taken=True, target=BASE))
        counts = lockstep_escapes(trace, ZEC12_CONFIG_2)
        assert counts.get("miss_report", 0) >= 1

    def test_transfer_activity_matches_on_real_trace(self):
        # A real trace under the full BTB2 configuration exercises demand
        # i-cache misses, tracker upgrades and bulk-transfer deliveries;
        # parity must hold through every busy window.
        trace = workload_by_name("CB84").trace(scale=0.02)
        counts = lockstep_escapes(list(trace), ZEC12_CONFIG_2)
        assert sum(counts.values()) >= 1

    def test_escapes_span_chunk_boundaries(self):
        # More than one chunk of records, with escapes on both sides of
        # the boundary: absolute escape indices must stay correct.
        trace = loop_trace(CHUNK_RECORDS // 4, body=6)
        assert len(trace) > CHUNK_RECORDS
        lockstep_escapes(trace, ZEC12_CONFIG_2)


class TestWholeRunParity:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[c.name for c in CONFIGS])
    def test_detailed_run_bit_identical(self, config):
        trace = workload_by_name("CB84").trace(scale=0.02)
        reference = Simulator(config=config)
        reference.run(trace)
        batched = Simulator(config=config, engine_mode="batched")
        batched.run(trace)
        assert reference.state_dict() == batched.state_dict()

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[c.name for c in CONFIGS])
    def test_warm_run_bit_identical(self, config):
        trace = workload_by_name("CB84").trace(scale=0.02)
        reference = Simulator(config=config)
        reference.warm_run(trace)
        batched = Simulator(config=config, engine_mode="batched")
        batched.warm_run(trace)
        assert reference.state_dict() == batched.state_dict()

    def test_sampled_estimates_bit_identical(self):
        trace = workload_by_name("CB84").trace(scale=0.05)
        plan = SamplingPlan(warmup=2_000, interval=2_000, period=20_000)
        reference = run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)
        batched = run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan,
                              engine_mode="batched")
        assert reference.result == batched.result


class TestEngineModeSemantics:
    def test_modes_are_validated(self):
        with pytest.raises(ValueError, match="unknown engine_mode"):
            Simulator(engine_mode="vectorized")
        for mode in ENGINE_MODES:
            assert validate_engine_mode(mode) == mode

    def test_auto_resolves_by_observation(self):
        assert resolve_engine_mode("auto", observed=False) == "batched"
        assert resolve_engine_mode("auto", observed=True) == "object"
        assert Simulator(engine_mode="auto").resolved_engine_mode() \
            == "batched"
        observed = Simulator(engine_mode="auto",
                             telemetry=Telemetry(tracer=Tracer()))
        assert observed.resolved_engine_mode() == "object"

    def test_batched_run_with_observer_falls_back_identically(self):
        # An explicit batched request with telemetry attached must not
        # lose events: the run degrades to per-record stepping.
        trace = loop_trace(200, body=6)
        plain = Simulator(config=ZEC12_CONFIG_2,
                          telemetry=Telemetry(tracer=Tracer()))
        plain.run(trace)
        batched = Simulator(config=ZEC12_CONFIG_2, engine_mode="batched",
                            telemetry=Telemetry(tracer=Tracer()))
        batched.run(trace)
        assert plain.state_dict() == batched.state_dict()
        assert len(plain.telemetry.tracer.events) \
            == len(batched.telemetry.tracer.events)


class TestGoldenMetamorphic:
    """``engine_mode="batched"`` must leave golden baselines bit-identical."""

    def _gate(self, workloads):
        from repro.oracle.golden import (
            GOLDEN_PATH,
            compare_baseline,
            load_baseline,
        )

        baseline = load_baseline(GOLDEN_PATH)
        problems = compare_baseline(baseline, workloads=workloads,
                                    engine_mode="batched")
        assert problems == []

    def test_batched_engine_passes_golden_smoke(self):
        self._gate(("Z/OS LSPR CB84",))

    @pytest.mark.slow
    def test_batched_engine_passes_full_golden_gate(self):
        self._gate(None)
