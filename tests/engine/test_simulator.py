"""Integration tests for the whole-system simulator on crafted traces."""

import pytest

from repro.core.config import PredictorConfig, ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.engine.params import TimingParams
from repro.engine.simulator import Simulator, simulate
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

from tests.conftest import assert_contiguous, branch, loop_trace, straightline

BASE = 0x1000_0000


def small_config(**overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=2,
        btb2_rows=256, btb2_ways=4,
        pht_entries=256, ctb_entries=256, fit_entries=8,
        surprise_bht_entries=1024,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestBasics:
    def test_straightline_code_has_no_bad_outcomes(self):
        result = simulate(straightline(BASE, 200), config=small_config())
        assert result.counters.branches == 0
        assert result.counters.bad_outcomes == 0
        assert result.cpi > 0

    def test_instruction_count(self):
        result = simulate(straightline(BASE, 123), config=small_config())
        assert result.counters.instructions == 123

    def test_determinism(self):
        trace = loop_trace(iterations=50)
        a = simulate(trace, config=small_config())
        b = simulate(trace, config=small_config())
        assert a.cpi == b.cpi
        assert a.counters.outcomes == b.counters.outcomes

    def test_finish_sets_cycles(self):
        sim = Simulator(config=small_config())
        for record in straightline(BASE, 10):
            sim.step(record)
        result = sim.finish()
        assert result.counters.cycles == pytest.approx(sim._cycle)


class TestLoopLearning:
    def test_loop_branch_learned_after_first_iteration(self):
        # 100-iteration loop: the first encounter is a compulsory surprise,
        # after which the branch is predicted dynamically.
        result = simulate(loop_trace(iterations=100), config=small_config())
        outcomes = result.counters.outcomes
        assert outcomes[OutcomeKind.SURPRISE_COMPULSORY] == 1
        assert outcomes[OutcomeKind.GOOD_DYNAMIC] >= 95

    def test_loop_exit_mispredicted_by_bimodal(self):
        result = simulate(loop_trace(iterations=100), config=small_config())
        # The final not-taken exit is the lone direction mispredict.
        assert (
            result.counters.outcomes[OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN]
            == 1
        )


class TestSurpriseClassification:
    def test_first_sighting_is_compulsory(self):
        trace = straightline(BASE, 4) + [
            branch(BASE + 16, taken=True, target=BASE + 64,
                   kind=BranchKind.UNCOND)
        ] + straightline(BASE + 64, 4)
        result = simulate(trace, config=small_config())
        assert result.counters.outcomes[OutcomeKind.SURPRISE_COMPULSORY] == 1

    def test_capacity_after_eviction(self):
        # One branch, revisited after enough conflicting installs to push it
        # out of the tiny first level.
        config = small_config(btb1_rows=8, btb1_ways=1, btbp_rows=8,
                              btbp_ways=1, btb2_enabled=False)
        target_branch = BASE + 15 * 32  # lives in row 15
        records = []
        # First visit: surprise install.
        records.append(branch(target_branch, taken=True, target=target_branch + 64,
                              kind=BranchKind.UNCOND))
        records.extend(straightline(target_branch + 64, 2))
        # Conflicting branches: same BTB row, different tags.
        for conflict in range(1, 4):
            alias = target_branch + conflict * (8 * 32)
            records.append(branch(records[-1].next_sequential, taken=True,
                                  target=alias, kind=BranchKind.UNCOND))
            records.append(branch(alias, taken=True, target=alias + 64,
                                  kind=BranchKind.UNCOND))
            records.extend(straightline(alias + 64, 2))
        # Revisit the original branch.
        records.append(branch(records[-1].next_sequential, taken=True,
                              target=target_branch, kind=BranchKind.UNCOND))
        records.append(branch(target_branch, taken=True,
                              target=target_branch + 64,
                              kind=BranchKind.UNCOND))
        records.extend(straightline(target_branch + 64, 2))
        assert_contiguous(records)
        result = simulate(records, config=config)
        assert result.counters.outcomes[OutcomeKind.SURPRISE_CAPACITY] >= 1

    def test_good_surprise_for_cold_not_taken(self):
        trace = straightline(BASE, 4) + [
            branch(BASE + 16, taken=False, target=BASE + 1024)
        ] + straightline(BASE + 20, 4)
        result = simulate(trace, config=small_config())
        assert result.counters.outcomes[OutcomeKind.GOOD_SURPRISE] == 1
        assert result.counters.bad_outcomes == 0


class TestPenaltyAccounting:
    def test_surprise_penalty_charged(self):
        timing = TimingParams()
        trace = straightline(BASE, 4) + [
            branch(BASE + 16, taken=True, target=BASE + 64,
                   kind=BranchKind.UNCOND)
        ] + straightline(BASE + 64, 4)
        result = simulate(trace, config=small_config(), timing=timing)
        assert result.counters.penalty_cycles.get("surprise", 0) > 0

    def test_icache_miss_penalty_charged(self):
        result = simulate(straightline(BASE, 300, length=6),
                          config=small_config())
        assert result.counters.penalty_cycles.get("icache_miss", 0) > 0

    def test_prefetch_hides_icache_miss_for_predicted_branch(self):
        # A hot loop whose body spans into a second line: once predicted,
        # the taken branch prefetches its target line.
        config = small_config()
        result = simulate(loop_trace(iterations=200, body=8), config=config)
        counters = result.counters
        # Demand misses happen only for the first touches.
        assert counters.icache_demand_misses <= 4


class TestBTB2EndToEnd:
    def _thrash_trace(self, rounds=30, sites=16, hops=4):
        """Visit ``sites`` distant multi-branch blocks round-robin.

        Each site is a chain of ``hops`` taken branches 32 bytes apart —
        all inside one 128-byte sector, so a single BTB2 partial search can
        restore the whole chain.  The combined branch population exceeds
        the tiny BTB1, so without a BTB2 every revisit re-learns the chain
        one surprise at a time.  The 0x1020 stride spreads sites across BTB
        rows (a 0x1000 stride would alias them into one congruence class).
        """
        records = []
        site_addresses = [BASE + i * 0x1020 for i in range(sites)]
        for _ in range(rounds):
            for site, address in enumerate(site_addresses):
                for hop in range(hops):
                    hop_base = address + hop * 0x20
                    records.extend(straightline(hop_base, 4))
                    if hop < hops - 1:
                        target = address + (hop + 1) * 0x20
                    else:
                        target = site_addresses[(site + 1) % sites]
                    records.append(
                        branch(hop_base + 16, taken=True, target=target,
                               kind=BranchKind.UNCOND)
                    )
        return records

    def test_btb2_reduces_capacity_surprises(self):
        trace = self._thrash_trace()
        config_off = small_config(btb1_rows=8, btb1_ways=1, btbp_rows=8,
                                  btbp_ways=6, btb2_enabled=False)
        config_on = small_config(btb1_rows=8, btb1_ways=1, btbp_rows=8,
                                 btbp_ways=6, btb2_enabled=True)
        off = simulate(trace, config=config_off)
        on = simulate(trace, config=config_on)
        cap = OutcomeKind.SURPRISE_CAPACITY
        assert on.counters.outcomes[cap] < off.counters.outcomes[cap]
        assert on.cpi < off.cpi

    def test_btb2_transfers_happen(self):
        trace = self._thrash_trace()
        config = small_config(btb1_rows=8, btb1_ways=1, btbp_rows=8,
                              btbp_ways=6)
        result = simulate(trace, config=config)
        assert result.preload_stats["entries_transferred"] > 0
        assert result.preload_stats["full_searches"] + \
            result.preload_stats["partial_searches"] > 0


class TestZEC12Configs:
    def test_architected_configs_run(self):
        trace = loop_trace(iterations=30)
        for config in (ZEC12_CONFIG_1, ZEC12_CONFIG_2):
            result = simulate(trace, config=config)
            assert result.counters.instructions == len(trace)

    def test_config1_has_no_preload_stats(self):
        result = simulate(loop_trace(iterations=10), config=ZEC12_CONFIG_1)
        assert result.preload_stats == {}
