"""Tests for timing parameters."""

import pytest

from repro.engine.params import DEFAULT_TIMING, TimingParams, ZEC12_CHIP_CONFIG


class TestTimingParams:
    def test_base_decode_includes_friction(self):
        timing = TimingParams(decode_width=2, dispatch_stall_cycles=0.5)
        assert timing.base_decode_cycles == 1.0

    def test_default_decode_width_is_three(self):
        assert DEFAULT_TIMING.decode_width == 3

    def test_bad_decode_width_rejected(self):
        with pytest.raises(ValueError):
            TimingParams(decode_width=0)

    @pytest.mark.parametrize(
        "field",
        ("mispredict_penalty", "surprise_taken_decode_penalty",
         "surprise_resolution_penalty", "l2_instruction_latency"),
    )
    def test_negative_penalties_rejected(self, field):
        with pytest.raises(ValueError):
            TimingParams(**{field: -1.0})

    def test_icache_matches_table5(self):
        assert DEFAULT_TIMING.icache_capacity_bytes == 64 * 1024
        assert DEFAULT_TIMING.icache_ways == 4

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_TIMING.decode_width = 5


class TestChipConfig:
    def test_table5_keys_present(self):
        for key in ("L1 Cache", "L2 Cache", "L3 Cache", "L4 Cache",
                    "Issue Queue", "Issue bandwidth"):
            assert key in ZEC12_CHIP_CONFIG

    def test_l1_line_matches_paper(self):
        assert "64KB (4-way)" in ZEC12_CHIP_CONFIG["L1 Cache"]
        assert "96KB (6-way)" in ZEC12_CHIP_CONFIG["L1 Cache"]
