"""Tests for the multi-core hardware proxy (Figure 3 infrastructure)."""

import pytest

from repro.core.config import PredictorConfig
from repro.engine.multicore import (
    core_slices,
    hardware_timing,
    run_multicore,
    system_performance_gain,
)
from repro.engine.params import DEFAULT_TIMING
from repro.engine.simulator import Simulator

from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=2,
        btb2_rows=256, btb2_ways=4, pht_entries=256, ctb_entries=256,
        fit_entries=8, surprise_bht_entries=1024,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestHardwareTiming:
    def test_single_core_is_diluted_vs_model(self):
        hw = hardware_timing(DEFAULT_TIMING, cores=1)
        assert hw.l2_instruction_latency > DEFAULT_TIMING.l2_instruction_latency
        assert hw.dispatch_stall_cycles > DEFAULT_TIMING.dispatch_stall_cycles

    def test_interference_grows_with_cores(self):
        one = hardware_timing(DEFAULT_TIMING, cores=1)
        four = hardware_timing(DEFAULT_TIMING, cores=4)
        assert four.l2_instruction_latency > one.l2_instruction_latency

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            hardware_timing(DEFAULT_TIMING, cores=0)


class TestRunMulticore:
    def test_slices_cover_whole_trace(self):
        trace = loop_trace(iterations=100)
        result = run_multicore(trace, small_config(), cores=4)
        assert result.total_instructions == len(trace)
        assert len(result.per_core) == 4

    def test_single_core(self):
        trace = loop_trace(iterations=50)
        result = run_multicore(trace, small_config(), cores=1)
        assert result.total_instructions == len(trace)

    def test_throughput_positive(self):
        trace = loop_trace(iterations=100)
        result = run_multicore(trace, small_config(), cores=2)
        assert result.system_throughput > 0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            run_multicore(loop_trace(iterations=5), small_config(), cores=0)

    def test_gain_metric_sign(self):
        trace = loop_trace(iterations=200)
        base = run_multicore(trace, small_config(btb1_rows=8, btb1_ways=1),
                             cores=1)
        better = run_multicore(trace, small_config(), cores=1)
        assert system_performance_gain(base, better) >= 0.0


class TestCoreSlices:
    @pytest.mark.parametrize("cores", [1, 2, 3, 4, 7])
    def test_slices_partition_the_trace(self, cores):
        trace = loop_trace(iterations=23)
        slices = core_slices(trace, cores)
        assert len(slices) == cores
        assert [r for s in slices for r in s] == trace
        # All but the remainder-absorbing last slice are equal length.
        lengths = {len(s) for s in slices[:-1]}
        assert len(lengths) <= 1

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            core_slices(loop_trace(iterations=2), cores=0)


class TestMulticoreStateRoundTrip:
    def test_save_load_resume_matches_uninterrupted_cores(self):
        """Each core snapshot mid-slice, restored, resumed: exact match."""
        trace = loop_trace(iterations=120)
        config = small_config()
        cores = 3
        reference = run_multicore(trace, config, cores=cores)
        timing = hardware_timing(DEFAULT_TIMING, cores)

        for slice_records, expected in zip(
            core_slices(trace, cores), reference.per_core
        ):
            half = len(slice_records) // 2
            front = Simulator(config=config, timing=timing)
            for record in slice_records[:half]:
                front.step(record)
            state = front.state_dict()

            resumed = Simulator(config=config, timing=timing)
            resumed.load_state_dict(state)
            for record in slice_records[half:]:
                resumed.step(record)
            result = resumed.finish()

            assert (result.counters.state_dict()
                    == expected.counters.state_dict())

    def test_state_dict_round_trips_through_json(self):
        import json

        trace = loop_trace(iterations=60)
        simulator = Simulator(config=small_config())
        for record in trace[: len(trace) // 2]:
            simulator.step(record)
        state = simulator.state_dict()
        # The snapshot must be pure data: a JSON round trip preserves it.
        assert json.loads(json.dumps(state)) == state
