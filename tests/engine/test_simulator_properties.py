"""Property test: the simulator digests any generated workload.

Uses the walker strategies to throw arbitrary (valid) programs at the full
simulator with a small hierarchy — crash-freedom, conservation laws, and
classification completeness hold for all of them.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PredictorConfig
from repro.engine.simulator import simulate
from repro.workloads.generator import WalkProfile, generate_trace
from repro.workloads.program import ProgramShape, build_program


def small_config():
    return PredictorConfig(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=128,
    )


@st.composite
def workloads(draw):
    shape = ProgramShape(
        functions=draw(st.integers(min_value=2, max_value=25)),
        blocks_per_function=(2, 6),
        instructions_per_block=(1, 4),
        call_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        loop_fraction=draw(st.floats(min_value=0.0, max_value=0.4)),
        seed=draw(st.integers(min_value=0, max_value=2**12)),
    )
    profile = WalkProfile(
        uniform_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        max_call_depth=3,
        max_loop_iterations=8,
        seed=draw(st.integers(min_value=0, max_value=2**12)),
    )
    return generate_trace(build_program(shape), 400, profile)


@settings(max_examples=20, deadline=None)
@given(workloads())
def test_conservation_laws(trace):
    result = simulate(trace, config=small_config())
    counters = result.counters
    # Every instruction accounted for.
    assert counters.instructions == len(trace)
    # Every branch classified exactly once.
    assert sum(counters.outcomes.values()) == counters.branches
    # The clock covers at least the decode time of every instruction.
    assert counters.cycles >= counters.instructions * (1 / 3)
    # Attributed penalties never exceed total cycles.
    assert sum(counters.penalty_cycles.values()) <= counters.cycles + 1e-6
    # CPI is finite and sane.
    assert math.isfinite(result.cpi)
    assert 0 < result.cpi < 100


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_btb2_never_changes_instruction_count(trace):
    with_btb2 = simulate(trace, config=small_config())
    without = simulate(
        trace, config=PredictorConfig(
            btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
            btb2_enabled=False, pht_entries=64, ctb_entries=64,
            fit_entries=4, surprise_bht_entries=128,
        )
    )
    assert with_btb2.counters.instructions == without.counters.instructions
    assert with_btb2.counters.branches == without.counters.branches
