"""Execution backends and the parallel-spec cache isolation guarantees."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING
from repro.experiments.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    default_backend_name,
    resolve_backend,
)
from repro.experiments.common import (
    load_cached_run,
    run_fingerprint,
    run_workload,
)
from repro.experiments.pool import ExecutionLog, RunSpec, run_many
from repro.sampling import ParallelPlan
from repro.workloads.catalog import workload_by_name

SPEC = workload_by_name("TPF")
SCALE = 0.04


def _square(value: int) -> int:
    return value * value


def _process_name(_value) -> str:
    return multiprocessing.current_process().name


class TestBackendRegistry:
    def test_registry_names(self):
        assert set(BACKENDS) == {"serial", "thread", "process"}

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None).name == "process"
        assert resolve_backend("serial").name == "serial"
        instance = SerialBackend()
        assert resolve_backend(instance) is instance
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert default_backend_name() == "serial"
        assert resolve_backend(None).name == "serial"
        # Explicit name still beats the environment.
        assert resolve_backend("process").name == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("quantum")


class TestBackendMap:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_order_preserving(self, name):
        items = list(range(8))
        assert BACKENDS[name].map(_square, items, jobs=3) == \
            [i * i for i in items]

    def test_empty_items(self):
        assert ProcessBackend().map(_square, [], jobs=4) == []

    def test_process_backend_degrades_when_trivial(self):
        # One item or one job: no pool is spun up — the work happens here.
        assert ProcessBackend().map(_process_name, [0], jobs=8) == \
            [multiprocessing.current_process().name]
        names = ProcessBackend().map(_process_name, [0, 1], jobs=1)
        assert names == [multiprocessing.current_process().name] * 2

    def test_thread_backend_shares_the_address_space(self):
        from repro.experiments.backends import ThreadBackend

        seen = []
        ThreadBackend().map(seen.append, list(range(6)), jobs=3)
        assert sorted(seen) == list(range(6))

    def test_process_backend_actually_forks(self):
        names = ProcessBackend().map(_process_name, list(range(4)), jobs=2)
        assert all(name != multiprocessing.current_process().name
                   for name in names)


class TestParallelFingerprintIsolation:
    """Satellite 4: serial and parallel runs never share a cache slot."""

    def test_parallel_payload_extends_the_fingerprint(self):
        base = run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE)
        par = run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE,
                              parallel=ParallelPlan(4), backend="serial")
        assert base != par
        # K and backend are both part of the slot identity.
        assert par != run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING,
                                      SCALE, parallel=ParallelPlan(8),
                                      backend="serial")
        assert par != run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING,
                                      SCALE, parallel=ParallelPlan(4),
                                      backend="process")

    def test_backend_alone_does_not_change_serial_fingerprints(self):
        """For serial runs the backend is execution plumbing, not identity:
        historical cache entries must keep hitting."""
        base = run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE)
        assert base == run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING,
                                       SCALE, backend="serial")

    def test_serial_hit_never_served_for_parallel_spec(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        serial_spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        run_many([serial_spec])  # warm the serial slot
        log = ExecutionLog()
        parallel_spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE,
                                parallel=ParallelPlan(2), backend="serial")
        (result,) = run_many([parallel_spec], log=log)
        assert log.cache_hits == 0 and log.simulated == 1
        assert result.parallel is not None  # genuinely ran parallel

    def test_parallel_hit_never_served_for_serial_spec(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        parallel_spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE,
                                parallel=ParallelPlan(2), backend="serial")
        run_many([parallel_spec])  # warm the parallel slot
        log = ExecutionLog()
        serial_spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        (result,) = run_many([serial_spec], log=log)
        assert log.cache_hits == 0 and log.simulated == 1
        assert result.parallel is None  # genuinely ran serial

    def test_cached_parallel_provenance_round_trips(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE,
                       parallel=ParallelPlan(2), backend="serial")
        (fresh,) = run_many([spec])
        cached = load_cached_run(spec.fingerprint())
        assert cached == fresh
        assert cached.parallel == fresh.parallel
        assert cached.parallel["exact"] is True


class TestParallelRunsThroughThePool:
    def test_exact_parallel_equals_serial_run_result(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        serial = run_workload(SPEC, ZEC12_CONFIG_2, scale=SCALE)
        parallel = run_workload(SPEC, ZEC12_CONFIG_2, scale=SCALE,
                                parallel=ParallelPlan(4), backend="serial")
        # The scientific payload is equal; provenance rides outside
        # equality exactly so this gate can be expressed as ==.
        assert parallel == serial
        assert parallel.parallel["mode"] == "exact"
        assert parallel.parallel["slices"] == 4

    def test_parallel_specs_execute_in_the_orchestrator(
        self, tmp_path, monkeypatch
    ):
        """A parallel spec inside a pooled batch must not be shipped to a
        daemonic pool worker (which cannot fan out); it runs locally."""
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        specs = [
            RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE),
            RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE),
            RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE,
                    parallel=ParallelPlan(2), backend="process"),
        ]
        results = run_many(specs, jobs=2)
        assert results[2] == results[1]  # exact mode: == its serial twin
        assert results[2].parallel is not None

    def test_audited_parallel_spec_is_refused(self):
        with pytest.raises(ValueError, match="audited runs cannot"):
            run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE, audit=True,
                         parallel=ParallelPlan(2), backend="serial")

    def test_run_many_backend_argument_controls_dispatch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        specs = [
            RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE),
            RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE),
        ]
        through_serial = run_many(specs, jobs=2, backend="serial")
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path / "other"))
        through_process = run_many(specs, jobs=2, backend="process")
        assert through_serial == through_process
