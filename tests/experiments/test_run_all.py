"""Tests for the run-everything report generator (static parts).

The full ``build_report`` is exercised by the real experiment run (it
produced EXPERIMENTS.md); here we cover the argument handling and the
paper-reference constants without paying for simulations.
"""

from repro.experiments.run_all import PAPER, main


class TestPaperConstants:
    def test_headline_numbers_match_paper_text(self):
        assert PAPER["max_btb2_gain"] == 13.8
        assert PAPER["daytrader_large_btb1_gain"] == 20.2
        assert PAPER["effectiveness_range"] == (16.6, 83.4)
        assert PAPER["effectiveness_mean"] == 52.0

    def test_figure3_numbers(self):
        assert PAPER["fig3_wasdb_hw"] == 5.3
        assert PAPER["fig3_wasdb_model"] == 8.5
        assert PAPER["fig3_cics_hw"] == 3.4

    def test_figure4_numbers(self):
        assert PAPER["fig4_bad_without"] == 25.9
        assert PAPER["fig4_bad_with"] == 14.3
        assert PAPER["fig4_capacity_without"] == 21.9
        assert PAPER["fig4_capacity_with"] == 8.1


class TestCLI:
    def test_rejects_unknown_flag(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--bogus"])
