"""Tests for the parallel execution layer and cache concurrency.

Covers the ISSUE-1 guarantees: ``run_many`` returns results identical to
serial ``run_workload`` calls, duplicate specs are deduplicated, corrupt
or truncated cache entries are ignored and re-simulated, and two processes
racing on the same fingerprint leave a valid cache behind.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING
from repro.experiments.common import (
    RunResult,
    load_cached_run,
    run_fingerprint,
    run_workload,
    store_cached_run,
)
from repro.experiments.pool import (
    ExecutionLog,
    RunSpec,
    effective_jobs,
    parallel_map,
    run_many,
)
from repro.workloads.catalog import workload_by_name

SPEC = workload_by_name("TPF")
CB84 = workload_by_name("CB84")
SCALE = 0.04


class TestEffectiveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(None) == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert effective_jobs(3) == 3

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs(None) == 5

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(0) == (os.cpu_count() or 1)
        assert effective_jobs(-2) == (os.cpu_count() or 1)


class TestRunMany:
    def test_matches_serial_run_workload(self):
        specs = [
            RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE),
            RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE),
        ]
        batch = run_many(specs)
        serial = [
            run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE),
            run_workload(SPEC, ZEC12_CONFIG_2, scale=SCALE),
        ]
        assert batch == serial

    def test_parallel_matches_serial(self):
        # jobs=2 exercises the actual process pool even on one CPU.
        specs = [
            RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE),
            RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE),
        ]
        parallel = run_many(specs, jobs=2)
        serial = [run_workload(s.workload, s.config, scale=SCALE) for s in specs]
        assert parallel == serial

    def test_deduplicates_and_preserves_order(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        other = RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE)
        log = ExecutionLog()
        results = run_many([spec, other, spec, spec], log=log)
        assert len(results) == 4
        assert results[0] == results[2] == results[3]
        assert results[1].config == ZEC12_CONFIG_2.name
        assert log.simulated == 2  # two unique fingerprints, not four
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cache_hits_skip_simulation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        run_many([spec])
        log = ExecutionLog()
        results = run_many([spec], log=log)
        assert log.cache_hits == 1 and log.simulated == 0
        assert results[0].instructions == SPEC.scaled_length(SCALE)

    def test_observability_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        log = ExecutionLog()
        (result,) = run_many([RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)], log=log)
        assert result.wall_seconds > 0
        assert result.instructions_per_second > 0
        assert result.worker  # attributed to some process
        assert log.simulated_instructions == result.instructions
        assert log.batches == 1 and log.requested == 1


class TestCacheRobustness:
    def _key(self):
        from repro.engine.params import DEFAULT_TIMING

        return run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE)

    def test_corrupt_entry_is_resimulated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        path = tmp_path / f"{self._key()}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ this is not json")
        result = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        assert result.instructions == SPEC.scaled_length(SCALE)
        # The corrupt entry was overwritten with a valid one.
        assert json.loads(path.read_text())["workload"] == SPEC.name

    def test_truncated_entry_is_resimulated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        good = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        path = tmp_path / f"{self._key()}.json"
        path.write_text(path.read_text()[:40])  # simulate a torn write
        assert load_cached_run(self._key()) is None
        again = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        assert again == good

    def test_missing_required_fields_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        path = tmp_path / f"{self._key()}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"workload": SPEC.name, "instructions": 5}))
        assert load_cached_run(self._key()) is None

    def test_old_schema_without_observability_loads(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        run = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        path = tmp_path / f"{self._key()}.json"
        payload = json.loads(path.read_text())
        del payload["wall_seconds"], payload["worker"]
        payload["future_field"] = 123  # unknown keys are dropped, not fatal
        path.write_text(json.dumps(payload))
        cached = load_cached_run(self._key())
        assert cached == run  # observability excluded from equality
        assert cached.wall_seconds == 0.0 and cached.worker == ""

    def test_store_is_atomic_no_temp_residue(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        run = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        store_cached_run("deadbeef", run)
        assert not list(tmp_path.glob("*.tmp*"))
        assert load_cached_run("deadbeef") == run


def _race_worker(cache_dir: str, queue) -> None:
    """Child-process body for the write-race test (module-level: picklable)."""
    os.environ["REPRO_RESULTS_CACHE"] = cache_dir
    os.environ.pop("REPRO_SCALE", None)
    result = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
    queue.put((result.workload, result.cpi, result.instructions))


class TestConcurrentWriters:
    def test_two_processes_race_safely(self, tmp_path, monkeypatch):
        """Two processes simulating the same fingerprint concurrently both
        succeed, agree on the result, and leave exactly one valid entry."""
        cache_dir = str(tmp_path / "shared")
        monkeypatch.setenv("REPRO_RESULTS_CACHE", cache_dir)
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        workers = [
            context.Process(target=_race_worker, args=(cache_dir, queue))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert outcomes[0] == outcomes[1]
        entries = list((tmp_path / "shared").glob("*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())  # valid, not torn
        assert payload["workload"] == SPEC.name
        assert not list((tmp_path / "shared").glob("*.tmp*"))


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(6))
        assert parallel_map(_square, items) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=2) == [i * i for i in items]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []


def _square(value: int) -> int:
    return value * value


class TestSessionSummaryRendering:
    def test_render_run_summary_lines(self, tmp_path, monkeypatch):
        from repro.metrics.report import render_run_summary

        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        log = ExecutionLog()
        run_many([RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)], log=log)
        run_many([RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)], log=log)
        lines = render_run_summary(log)
        assert any("1 served from cache" in line for line in lines)
        assert all(line.startswith("_") and line.endswith("_") for line in lines)

    def test_render_empty_log(self):
        from repro.metrics.report import render_run_summary

        assert render_run_summary(ExecutionLog()) == ["_runs: none requested._"]

    def test_registry_adds_per_backend_dispatch_lines(
            self, tmp_path, monkeypatch):
        """With the session REGISTRY passed in, the summary reports each
        backend's dispatched count, utilization, and queue-vs-execute
        split sourced from the pool's recorded histograms."""
        from repro.metrics.report import render_run_summary
        from repro.telemetry.metrics import REGISTRY

        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        REGISTRY.reset()
        log = ExecutionLog()
        run_many([RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE),
                  RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE)],
                 log=log, jobs=2, backend="process")
        lines = render_run_summary(log, REGISTRY)
        backend_lines = [l for l in lines if "backend process:" in l]
        assert len(backend_lines) == 1
        assert "2 dispatched" in backend_lines[0]
        assert "utilization" in backend_lines[0]
        assert "queue wait" in backend_lines[0]
        assert "execute" in backend_lines[0]
        assert all(line.startswith("_") and line.endswith("_")
                   for line in lines)

    def test_registry_without_dispatch_metrics_adds_nothing(self):
        from repro.metrics.report import render_run_summary
        from repro.telemetry.metrics import MetricsRegistry

        log = ExecutionLog()
        assert render_run_summary(log, MetricsRegistry()) \
            == render_run_summary(log)


class TestAuditedRuns:
    def test_audited_run_matches_unaudited(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        plain = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        audited = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE, audit=True)
        # Scientific payload identical (observability fields excluded).
        assert audited == plain

    def test_audited_run_bypasses_cache_read_but_stores(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        key = run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE)
        # Poison the cache: a plausible but wrong entry.  An unaudited run
        # would serve it; an audited run must re-simulate past it.
        bogus = RunResult(
            workload=SPEC.name, config=ZEC12_CONFIG_1.name, cpi=123.0,
            instructions=1, branches=1, outcome_fractions={},
            preload_stats={},
        )
        store_cached_run(key, bogus)
        assert run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE).cpi == 123.0
        audited = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE, audit=True)
        assert audited.cpi != 123.0
        # ... and the fresh result was published over the bogus entry.
        assert load_cached_run(key) == audited

    def test_env_var_enables_auditing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        key = run_fingerprint(SPEC, ZEC12_CONFIG_1, DEFAULT_TIMING, SCALE)
        bogus = RunResult(
            workload=SPEC.name, config=ZEC12_CONFIG_1.name, cpi=123.0,
            instructions=1, branches=1, outcome_fractions={},
            preload_stats={},
        )
        store_cached_run(key, bogus)
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE).cpi != 123.0

    def test_run_many_audited_specs_skip_cache_reads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        run_many([spec])  # warm the cache
        log = ExecutionLog()
        audited_spec = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE, audit=True)
        (result,) = run_many([audited_spec], log=log)
        assert log.cache_hits == 0 and log.simulated == 1
        (unaudited,) = run_many([spec], log=log)
        assert log.cache_hits == 1
        assert result == unaudited

    def test_audited_runs_counted_as_bypassed_not_missed(
        self, tmp_path, monkeypatch
    ):
        """Audited runs never consult the cache; the log must attribute
        them to ``audit_bypassed`` so the session hit rate is computed
        over cache-eligible runs only."""
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        plain = RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        audited = RunSpec(SPEC, ZEC12_CONFIG_2, scale=SCALE, audit=True)
        run_many([plain])  # warm the cache for the unaudited spec
        log = ExecutionLog()
        run_many([plain, audited], log=log)
        assert log.requested == 2
        assert log.audit_bypassed == 1
        assert log.cache_eligible == 1
        assert log.cache_hits == 1  # 100% over eligible, not 50% over all

    def test_env_audit_counts_as_bypassed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_AUDIT", "1")
        log = ExecutionLog()
        run_many([RunSpec(SPEC, ZEC12_CONFIG_1, scale=SCALE)], log=log)
        assert log.audit_bypassed == 1 and log.cache_eligible == 0
