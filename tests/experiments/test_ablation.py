"""Cross-predictor ablation grid: rendering, payload, and pool plumbing.

The grid math (first-seen ordering, geometric means, markdown layout)
is tested on hand-built cells; one small end-to-end grid checks the
``RunSpec.predictor`` plumbing through the cached batch pool.
"""

import math

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.experiments.ablation import (
    ABLATION_WORKLOADS,
    AblationCell,
    _geomean,
    ablation_payload,
    ablation_results,
    render_ablation,
)
from repro.experiments.pool import RunSpec, run_many
from repro.workloads.catalog import workload_by_name

CELLS = [
    AblationCell("w1", "paper", 2.0, 0.10, 1000, 100),
    AblationCell("w1", "tage", 4.0, 0.25, 1000, 100),
    AblationCell("w2", "paper", 8.0, 0.50, 2000, 200),
    AblationCell("w2", "tage", 16.0, 0.75, 2000, 200),
]


class TestSlate:
    def test_default_slate_shape(self):
        # The acceptance bar: at least four workloads, at least one of
        # them adversarial, all resolvable through the catalog.
        assert len(ABLATION_WORKLOADS) >= 4
        assert any(name.startswith("adversarial/")
                   for name in ABLATION_WORKLOADS)
        for name in ABLATION_WORKLOADS:
            assert workload_by_name(name).name == name


class TestGridMath:
    def test_accuracy_is_one_minus_bad_fraction(self):
        assert CELLS[0].accuracy == pytest.approx(0.90)

    def test_geomean(self):
        assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert _geomean([]) == 0.0
        assert _geomean([0.0, -1.0]) == 0.0

    def test_render_layout(self):
        table = render_ablation(CELLS)
        lines = table.splitlines()
        assert "| workload | paper | tage |" in lines
        assert any(line.startswith("| w1 | 2.0000 (0.9000) |")
                   for line in lines)
        assert lines[-1].startswith("| geomean CPI | 4.0000 |")

    def test_render_marks_missing_cells(self):
        table = render_ablation(CELLS[:3])  # no (w2, tage) cell
        assert "| w2 | 8.0000 (0.5000) | - |" in table

    def test_payload(self):
        payload = ablation_payload(CELLS)
        assert payload["schema"] == 1
        assert payload["workloads"] == ["w1", "w2"]
        assert payload["predictors"] == ["paper", "tage"]
        assert len(payload["cells"]) == 4
        assert payload["cells"][0]["bad_outcome_fraction"] == 0.10
        assert payload["geomean_cpi"]["paper"] == pytest.approx(
            math.sqrt(2.0 * 8.0))


class TestEndToEnd:
    def test_unknown_predictor_fails_before_simulating(self):
        with pytest.raises(ValueError, match="registered"):
            ablation_results(predictors=("nope",))

    def test_small_grid_through_the_pool(self):
        cells = ablation_results(
            workloads=("adversarial/target-aliasing",),
            predictors=("paper", "tage"),
            scale=0.001, jobs=0)
        assert [(cell.workload, cell.predictor) for cell in cells] == [
            ("adversarial/target-aliasing", "paper"),
            ("adversarial/target-aliasing", "tage"),
        ]
        assert all(cell.cpi > 0 for cell in cells)
        assert all(0.0 <= cell.bad_fraction <= 1.0 for cell in cells)
        # Distinct predictors on the same trace must measure differently
        # in at least one dimension (they are different machines).
        assert (cells[0].cpi, cells[0].bad_fraction) != (
            cells[1].cpi, cells[1].bad_fraction)


class TestPoolPlumbing:
    def test_run_result_carries_the_predictor(self):
        spec = RunSpec(workload=workload_by_name("adversarial/btb-assoc"),
                       config=ZEC12_CONFIG_2, scale=0.001, predictor="ldbp")
        run, = run_many([spec], jobs=0)
        assert run.predictor == "ldbp"
        assert run.cpi > 0

    def test_zoo_results_round_trip_through_the_cache(self):
        spec = RunSpec(workload=workload_by_name("adversarial/btb-assoc"),
                       config=ZEC12_CONFIG_2, scale=0.001, predictor="tage")
        first, = run_many([spec], jobs=0)
        second, = run_many([spec], jobs=0)  # served from the result cache
        assert second.cpi == first.cpi
        assert second.predictor == "tage"
        assert second.outcome_fractions == first.outcome_fractions
