"""Smoke and shape tests for the figure runners on a reduced workload set.

Full-scale figure regeneration lives in ``benchmarks/``; here the runners
are exercised end to end on one small workload at a tiny scale so that the
plumbing (sweeps, caching, rendering) is covered by the fast suite.
"""

import pytest

from repro.experiments import figure2, figure3, figure4, figure5, figure6, figure7
from repro.workloads.catalog import workload_by_name

SPEC = workload_by_name("TPF")
WORKLOADS = (SPEC,)
SCALE = 0.04


@pytest.fixture(autouse=True)
def _shared_result_cache(monkeypatch, tmp_path_factory):
    # One cache for the whole module: figure runners share baselines.
    cache = tmp_path_factory.mktemp("results")
    monkeypatch.setenv("REPRO_RESULTS_CACHE", str(cache))


class TestFigure2:
    def test_rows_and_render(self):
        rows = figure2.run_figure2(workloads=WORKLOADS, scale=SCALE)
        assert len(rows) == 1
        row = rows[0]
        assert row.workload == SPEC.name
        assert row.baseline_cpi > 0
        text = figure2.render(rows)
        assert "Figure 2" in text and SPEC.name in text

    def test_summary_keys(self):
        rows = figure2.run_figure2(workloads=WORKLOADS, scale=SCALE)
        summary = figure2.summarize(rows)
        assert set(summary) == {
            "max_btb2_gain_percent", "max_large_btb1_gain_percent",
            "min_effectiveness_percent", "max_effectiveness_percent",
            "mean_effectiveness_percent",
        }


class TestFigure4:
    def test_columns(self):
        without, with_btb2 = figure4.run_figure4(spec=SPEC, scale=SCALE)
        assert without.label == "No BTB2"
        assert 0 <= without.total_bad <= 1
        assert set(without.fractions) == set(figure4.BAR_SEGMENTS)
        text = figure4.render((without, with_btb2))
        assert "total bad outcomes" in text


class TestSweeps:
    def test_figure5_two_sizes(self):
        points = figure5.run_figure5(
            workloads=WORKLOADS, scale=SCALE,
            sizes=((1024, 6), (4096, 6)),
        )
        assert [p.capacity for p in points] == [6144, 24576]
        assert points[1].implemented
        assert "zEC12" in figure5.render(points)

    def test_figure6_two_limits(self):
        points = figure6.run_figure6(workloads=WORKLOADS, scale=SCALE,
                                     limits=(2, 4))
        assert [p.miss_limit for p in points] == [2, 4]
        assert points[1].implemented
        assert points[0].search_bytes == 64

    def test_figure7_two_counts(self):
        points = figure7.run_figure7(workloads=WORKLOADS, scale=SCALE,
                                     counts=(1, 3))
        assert [p.trackers for p in points] == [1, 3]
        assert points[1].implemented


class TestFigure3:
    def test_hardware_proxy_rows(self):
        rows = figure3.run_figure3(scale=0.03)
        assert len(rows) == 2
        single, quad = rows
        assert single.cores == 1 and quad.cores == 4
        assert single.model_gain_percent is not None
        assert quad.model_gain_percent is None
        text = figure3.render(rows)
        assert "hardware" in text
