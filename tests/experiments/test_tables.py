"""Tests for the table renderers."""

from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)


class TestTable1:
    def test_lists_seven_stages(self):
        text = render_table1()
        for stage in ("b0", "b1", "b2", "b3", "b4", "b5", "b6"):
            assert f"{stage}:" in text

    def test_mentions_16_bytes_per_cycle(self):
        assert "16 B/cycle" in render_table1()


class TestTable2:
    def test_default_three_search_example(self):
        text = render_table2()
        assert "search+0" in text and "search+2" in text
        assert "starting search address" in text

    def test_miss_reported_on_last_search(self):
        lines = render_table2(miss_limit=4).splitlines()
        assert "reported" in lines[-1]
        assert sum("reported" in line for line in lines) == 1


class TestTable3:
    def test_three_rows_with_capacities(self):
        text = render_table3()
        assert "No BTB2" in text
        assert "24576 (4096x6)" in text
        assert "0 (disabled)" in text


class TestTable4:
    def test_paper_counters_without_measurement(self):
        text = render_table4(measured=False)
        assert "34,819" in text       # DayTrader DBServ unique
        assert "115,509" in text      # Trade6 unique
        assert "DayTrader DBServ" in text

    def test_all_thirteen_rows(self):
        text = render_table4(measured=False)
        assert len([l for l in text.splitlines() if l.startswith("  Z") or
                    l.startswith("  z") or l.startswith("  TPF")]) == 13


class TestTable5:
    def test_chip_configuration_lines(self):
        text = render_table5()
        assert "64KB (4-way)" in text
        assert "384 Meg off-chip" in text
        assert "Issue bandwidth" in text
