"""Pure-function tests for figure renderers and summaries (no simulation)."""

from repro.core.events import OutcomeKind
from repro.experiments.figure2 import Figure2Row, render, summarize
from repro.experiments.figure3 import Figure3Row
from repro.experiments.figure3 import render as render3
from repro.experiments.figure4 import BAR_SEGMENTS, Figure4Column
from repro.experiments.figure4 import render as render4
from repro.experiments.figure5 import Figure5Point
from repro.experiments.figure5 import render as render5
from repro.experiments.figure6 import Figure6Point
from repro.experiments.figure6 import render as render6
from repro.experiments.figure7 import Figure7Point
from repro.experiments.figure7 import render as render7


def rows():
    return [
        Figure2Row("Trace A", 1.5, 5.0, 10.0, 50.0),
        Figure2Row("Trace B", 1.2, 2.0, 8.0, 25.0),
    ]


class TestFigure2Pure:
    def test_summary_math(self):
        summary = summarize(rows())
        assert summary["max_btb2_gain_percent"] == 5.0
        assert summary["max_large_btb1_gain_percent"] == 10.0
        assert summary["min_effectiveness_percent"] == 25.0
        assert summary["max_effectiveness_percent"] == 50.0
        assert summary["mean_effectiveness_percent"] == 37.5

    def test_render_lists_every_trace(self):
        text = render(rows())
        assert "Trace A" in text and "Trace B" in text
        assert "5.00" in text and "10.00" in text


class TestFigure3Pure:
    def test_render_shows_model_comparison_only_when_present(self):
        text = render3([
            Figure3Row("W", 1, 5.0, 8.0),
            Figure3Row("X", 4, 3.0, None),
        ])
        assert "(model: 8.00%)" in text
        assert text.count("model") == 1


class TestFigure4Pure:
    def test_total_bad_sums_segments(self):
        fractions = {kind: 0.01 for kind in BAR_SEGMENTS}
        column = Figure4Column("test", fractions)
        assert abs(column.total_bad - 0.06) < 1e-12

    def test_render_has_total_row(self):
        fractions = {kind: 0.02 for kind in BAR_SEGMENTS}
        text = render4((Figure4Column("a", fractions),
                        Figure4Column("b", fractions)))
        assert "total bad outcomes" in text
        assert "12.0%" in text

    def test_segments_cover_all_bad_kinds(self):
        assert set(BAR_SEGMENTS) == {
            kind for kind in OutcomeKind if kind.is_bad
        }


class TestSweepRenderers:
    def test_figure5_marks_implemented(self):
        text = render5([
            Figure5Point(1024, 6, 6144, 1.0, False),
            Figure5Point(4096, 6, 24576, 2.0, True),
        ])
        assert text.count("zEC12") == 1

    def test_figure6_shows_bytes(self):
        text = render6([Figure6Point(4, 128, 2.0, True)])
        assert "128 B" in text

    def test_figure7_counts(self):
        text = render7([Figure7Point(3, 2.0, True),
                        Figure7Point(8, 2.1, False)])
        assert "3 tracker(s)" in text
