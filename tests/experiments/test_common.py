"""Tests for the experiment runner and its result cache."""

import json

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.experiments.common import (
    RunResult,
    geometric_mean,
    mean,
    run_workload,
)
from repro.workloads.catalog import workload_by_name

SPEC = workload_by_name("TPF")
SCALE = 0.04


class TestRunWorkload:
    def test_produces_sane_result(self):
        result = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        assert result.workload == SPEC.name
        assert result.cpi > 0
        assert result.instructions == SPEC.scaled_length(SCALE)
        assert 0 < result.bad_fraction < 1

    def test_cache_hit_returns_identical_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        first = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        assert list(tmp_path.glob("*.json"))
        second = run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        assert first == second

    def test_cache_distinguishes_configs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        run_workload(SPEC, ZEC12_CONFIG_2, scale=SCALE)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cache_payload_is_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_CACHE", str(tmp_path))
        run_workload(SPEC, ZEC12_CONFIG_1, scale=SCALE)
        (payload_file,) = tmp_path.glob("*.json")
        payload = json.loads(payload_file.read_text())
        assert payload["workload"] == SPEC.name
        assert "outcome_fractions" in payload


class TestRunResult:
    def test_fraction_lookup(self):
        run = RunResult(
            workload="w", config="c", cpi=1.0, instructions=10, branches=5,
            outcome_fractions={OutcomeKind.SURPRISE_CAPACITY.value: 0.25},
            preload_stats={},
        )
        assert run.fraction(OutcomeKind.SURPRISE_CAPACITY) == 0.25
        assert run.fraction(OutcomeKind.GOOD_DYNAMIC) == 0.0
        assert run.bad_fraction == 0.25


class TestAggregates:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0
