"""Tests for metrics counters and derived figures."""

import pytest

from repro.core.events import OutcomeKind
from repro.metrics.counters import (
    SimCounters,
    btb2_effectiveness,
    cpi_improvement,
)


class TestSimCounters:
    def test_fresh_counters_are_zero(self):
        counters = SimCounters()
        assert counters.cpi == 0.0
        assert counters.bad_outcome_fraction == 0.0
        assert all(v == 0 for v in counters.outcomes.values())

    def test_cpi(self):
        counters = SimCounters(instructions=100, cycles=150.0)
        assert counters.cpi == 1.5

    def test_outcome_bookkeeping(self):
        counters = SimCounters()
        counters.branches = 10
        counters.record_outcome(OutcomeKind.GOOD_DYNAMIC)
        counters.record_outcome(OutcomeKind.SURPRISE_CAPACITY)
        counters.record_outcome(OutcomeKind.MISPREDICT_WRONG_TARGET)
        assert counters.bad_outcomes == 2
        assert counters.surprise_outcomes == 1
        assert counters.mispredict_outcomes == 1
        assert counters.bad_outcome_fraction == 0.2

    def test_outcome_fractions_sum_to_recorded(self):
        counters = SimCounters()
        counters.branches = 4
        for kind in (OutcomeKind.GOOD_DYNAMIC, OutcomeKind.GOOD_SURPRISE,
                     OutcomeKind.SURPRISE_LATENCY,
                     OutcomeKind.SURPRISE_COMPULSORY):
            counters.record_outcome(kind)
        assert sum(counters.outcome_fractions().values()) == pytest.approx(1.0)

    def test_penalty_attribution(self):
        counters = SimCounters()
        counters.attribute_penalty("mispredict", 18.0)
        counters.attribute_penalty("mispredict", 18.0)
        assert counters.penalty_cycles["mispredict"] == 36.0

    def test_penalty_fraction(self):
        counters = SimCounters()
        counters.attribute_penalty("mispredict", 30.0)
        counters.attribute_penalty("surprise", 10.0)
        assert counters.total_penalty_cycles == 40.0
        assert counters.penalty_fraction("mispredict") == 0.75
        assert counters.penalty_fraction("never_seen") == 0.0

    def test_zero_instruction_run_derives_all_zeros(self):
        """An empty run must yield 0.0 everywhere — never raise or NaN."""
        counters = SimCounters()
        assert counters.instructions == 0 and counters.branches == 0
        assert counters.cpi == 0.0
        assert counters.bad_outcome_fraction == 0.0
        for kind in OutcomeKind:
            assert counters.outcome_fraction(kind) == 0.0
        assert counters.outcome_fractions() == {k: 0.0 for k in OutcomeKind}
        assert counters.total_penalty_cycles == 0.0
        assert counters.penalty_fraction("mispredict") == 0.0
        assert counters.bad_outcomes == 0
        assert counters.surprise_outcomes == 0
        assert counters.mispredict_outcomes == 0


class TestDerivedMetrics:
    def test_cpi_improvement(self):
        assert cpi_improvement(2.0, 1.5) == pytest.approx(25.0)

    def test_cpi_improvement_negative_for_regression(self):
        assert cpi_improvement(1.0, 1.1) < 0

    def test_cpi_improvement_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            cpi_improvement(0.0, 1.0)

    def test_effectiveness_is_ratio_in_percent(self):
        # Paper definition: BTB2 gain relative to the large-BTB1 gain.
        assert btb2_effectiveness(6.9, 13.8) == pytest.approx(50.0)

    def test_effectiveness_zero_ceiling(self):
        assert btb2_effectiveness(1.0, 0.0) == 0.0


class TestOutcomeKindTaxonomy:
    def test_good_kinds_not_bad(self):
        assert not OutcomeKind.GOOD_DYNAMIC.is_bad
        assert not OutcomeKind.GOOD_SURPRISE.is_bad

    def test_surprise_kinds(self):
        for kind in (OutcomeKind.SURPRISE_COMPULSORY,
                     OutcomeKind.SURPRISE_LATENCY,
                     OutcomeKind.SURPRISE_CAPACITY):
            assert kind.is_bad and kind.is_surprise and not kind.is_mispredict

    def test_mispredict_kinds(self):
        for kind in (OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN,
                     OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN,
                     OutcomeKind.MISPREDICT_WRONG_TARGET):
            assert kind.is_bad and kind.is_mispredict and not kind.is_surprise
