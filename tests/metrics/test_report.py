"""Tests for the human-readable report formatting."""

from repro.core.config import PredictorConfig
from repro.core.events import OutcomeKind
from repro.engine.simulator import SimulationResult, simulate
from repro.experiments.pool import ExecutionLog
from repro.metrics.counters import SimCounters
from repro.metrics.report import (
    _OUTCOME_WIDTH,
    format_comparison,
    format_result,
    render_run_summary,
)

from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=2,
        btb2_rows=256, btb2_ways=4, pht_entries=256, ctb_entries=256,
        fit_entries=8, surprise_bht_entries=1024,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestFormatResult:
    def test_contains_headline_numbers(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        text = format_result(result)
        assert "CPI" in text
        assert "bad branch outcomes" in text
        assert f"{result.counters.branches:,}" in text

    def test_custom_title(self):
        result = simulate(loop_trace(iterations=10), config=small_config())
        assert format_result(result, title="MY RUN").startswith("MY RUN")

    def test_zero_count_outcomes_omitted(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        text = format_result(result)
        assert "bad_not_taken_resolved_taken" not in text

    def test_preload_stats_rendered_when_btb2_enabled(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        assert "preload engine" in format_result(result)

    def test_no_preload_section_without_btb2(self):
        result = simulate(loop_trace(iterations=50),
                          config=small_config(btb2_enabled=False))
        assert "preload engine" not in format_result(result)

    def test_outcome_width_is_longest_taxonomy_value(self):
        assert _OUTCOME_WIDTH == max(len(k.value) for k in OutcomeKind)

    def test_golden_layout(self):
        """Pin the exact report layout for a hand-built run."""
        counters = SimCounters(instructions=1000, branches=100, cycles=1500.0)
        counters.outcomes[OutcomeKind.GOOD_DYNAMIC] = 90
        counters.outcomes[OutcomeKind.SURPRISE_CAPACITY] = 6
        counters.outcomes[OutcomeKind.MISPREDICT_WRONG_TARGET] = 4
        counters.attribute_penalty("mispredict", 72.0)
        result = SimulationResult(config_name="golden", counters=counters)
        expected = "\n".join([
            "golden",
            "  instructions 1,000  branches 100  CPI 1.500",
            "  bad branch outcomes: 10.0% (mispredicts 4, bad surprises 6)",
            "    good_dynamic                        90  90.00%",
            "    bad_wrong_target                     4   4.00%",
            "    surprise_capacity                    6   6.00%",
            "  penalty cycles by cause:",
            "    mispredict                           72",
        ])
        assert format_result(result) == expected


class TestRenderRunSummary:
    def test_empty_log(self):
        assert render_run_summary(ExecutionLog()) == ["_runs: none requested._"]

    def test_audit_bypassed_line_and_eligible_hit_rate(self):
        log = ExecutionLog()
        log.record_batch([], hits=3, elapsed=0.1, jobs=1, bypassed=0)
        log.record_batch([], hits=0, elapsed=0.1, jobs=1, bypassed=2)
        lines = render_run_summary(log)
        bypass = next(line for line in lines if "bypassed" in line)
        assert "2 audited runs bypassed the cache" in bypass
        assert "hit rate over the 1 eligible: 300%" in bypass

    def test_no_bypass_line_without_audited_runs(self):
        log = ExecutionLog()
        log.record_batch([], hits=2, elapsed=0.1, jobs=1)
        assert not any("bypassed" in line for line in render_run_summary(log))

    def test_phase_lines_sorted_by_cost(self):
        log = ExecutionLog()
        log.record_batch([], hits=1, elapsed=0.1, jobs=1)
        log.record_phase("figure 2", 1.5)
        log.record_phase("tables", 4.0)
        lines = render_run_summary(log)
        start = lines.index("_report phases (host wall time):_")
        assert lines[start + 1] == "_  tables: 4.0 s._"
        assert lines[start + 2] == "_  figure 2: 1.5 s._"


class TestFormatComparison:
    def test_reports_gain(self):
        base = simulate(loop_trace(iterations=50),
                        config=small_config(btb1_rows=8, btb1_ways=1))
        improved = simulate(loop_trace(iterations=50), config=small_config())
        text = format_comparison(base, improved)
        assert "CPI improvement" in text
        assert f"{base.cpi:.3f}" in text
