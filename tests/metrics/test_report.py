"""Tests for the human-readable report formatting."""

from repro.core.config import PredictorConfig
from repro.engine.simulator import simulate
from repro.metrics.report import format_comparison, format_result

from tests.conftest import loop_trace


def small_config(**overrides):
    defaults = dict(
        btb1_rows=64, btb1_ways=2, btbp_rows=16, btbp_ways=2,
        btb2_rows=256, btb2_ways=4, pht_entries=256, ctb_entries=256,
        fit_entries=8, surprise_bht_entries=1024,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


class TestFormatResult:
    def test_contains_headline_numbers(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        text = format_result(result)
        assert "CPI" in text
        assert "bad branch outcomes" in text
        assert f"{result.counters.branches:,}" in text

    def test_custom_title(self):
        result = simulate(loop_trace(iterations=10), config=small_config())
        assert format_result(result, title="MY RUN").startswith("MY RUN")

    def test_zero_count_outcomes_omitted(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        text = format_result(result)
        assert "bad_not_taken_resolved_taken" not in text

    def test_preload_stats_rendered_when_btb2_enabled(self):
        result = simulate(loop_trace(iterations=50), config=small_config())
        assert "preload engine" in format_result(result)

    def test_no_preload_section_without_btb2(self):
        result = simulate(loop_trace(iterations=50),
                          config=small_config(btb2_enabled=False))
        assert "preload engine" not in format_result(result)


class TestFormatComparison:
    def test_reports_gain(self):
        base = simulate(loop_trace(iterations=50),
                        config=small_config(btb1_rows=8, btb1_ways=1))
        improved = simulate(loop_trace(iterations=50), config=small_config())
        text = format_comparison(base, improved)
        assert "CPI improvement" in text
        assert f"{base.cpi:.3f}" in text
