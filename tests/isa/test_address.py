"""Tests for IBM-numbered address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import address as addr
from repro.isa.address import (
    BLOCK_FIELD,
    BTB1_INDEX,
    BTB2_INDEX,
    BTBP_INDEX,
    BitField,
    SECTOR_FIELD,
)

addresses = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBitField:
    def test_btb1_field_geometry(self):
        assert BTB1_INDEX.width == 10
        assert BTB1_INDEX.shift == 5

    def test_btbp_field_geometry(self):
        assert BTBP_INDEX.width == 7
        assert BTBP_INDEX.shift == 5

    def test_btb2_field_geometry(self):
        assert BTB2_INDEX.width == 12
        assert BTB2_INDEX.shift == 5

    def test_block_field_is_address_over_4k(self):
        assert BLOCK_FIELD.extract(0x12345_678) == 0x12345_678 >> 12

    def test_sector_field_is_address_over_128(self):
        assert SECTOR_FIELD.extract(0x1234) == 0x1234 >> 7

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            BitField(10, 5)

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            BitField(0, 64)

    def test_full_width_field(self):
        field = BitField(0, 63)
        assert field.extract(0xDEADBEEF) == 0xDEADBEEF

    @given(addresses)
    def test_extract_is_bounded_by_mask(self, value):
        assert BTB1_INDEX.extract(value) <= BTB1_INDEX.mask

    @given(addresses)
    def test_btb1_index_equals_row_modulo(self, value):
        # The bit-range extraction equals (address >> 5) % 1024 — the form
        # the generalized BTB storage uses.
        assert BTB1_INDEX.extract(value) == (value >> 5) % 1024

    @given(addresses)
    def test_btbp_index_equals_row_modulo(self, value):
        assert BTBP_INDEX.extract(value) == (value >> 5) % 128

    @given(addresses)
    def test_btb2_index_equals_row_modulo(self, value):
        assert BTB2_INDEX.extract(value) == (value >> 5) % 4096


class TestRowMath:
    def test_row_covers_32_bytes(self):
        assert addr.ROW_BYTES == 32

    def test_row_address_aligns_down(self):
        assert addr.row_address(0x1234_5678) == 0x1234_5660

    def test_row_offset(self):
        assert addr.row_offset(0x1234_5678) == 0x18

    def test_next_row(self):
        assert addr.next_row(0x20) == 0x40
        assert addr.next_row(0x3F) == 0x40

    @given(addresses)
    def test_row_address_idempotent(self, value):
        once = addr.row_address(value)
        assert addr.row_address(once) == once

    @given(addresses)
    def test_row_decomposition(self, value):
        assert addr.row_address(value) + addr.row_offset(value) == value


class TestBlockSectorQuartile:
    def test_block_geometry(self):
        assert addr.BLOCK_BYTES == 4096
        assert addr.SECTORS_PER_BLOCK == 32
        assert addr.ROWS_PER_BLOCK == 128
        assert addr.ROWS_PER_SECTOR == 4

    def test_block_address(self):
        assert addr.block_address(0x12345) == 0x12000

    def test_sector_in_block_range(self):
        assert addr.sector_in_block(0x12000) == 0
        assert addr.sector_in_block(0x12000 + 127) == 0
        assert addr.sector_in_block(0x12000 + 128) == 1
        assert addr.sector_in_block(0x12000 + 4095) == 31

    def test_quartile_in_block(self):
        assert addr.quartile_in_block(0x12000) == 0
        assert addr.quartile_in_block(0x12000 + 1024) == 1
        assert addr.quartile_in_block(0x12000 + 4095) == 3

    def test_sector_quartile_mapping(self):
        assert addr.sector_quartile(0) == 0
        assert addr.sector_quartile(7) == 0
        assert addr.sector_quartile(8) == 1
        assert addr.sector_quartile(31) == 3

    def test_sector_quartile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            addr.sector_quartile(32)

    def test_same_block(self):
        assert addr.same_block(0x12000, 0x12FFF)
        assert not addr.same_block(0x12000, 0x13000)

    @given(addresses)
    def test_sector_quartile_consistency(self, value):
        # The quartile of an address equals the quartile of its sector.
        assert addr.quartile_in_block(value) == addr.sector_quartile(
            addr.sector_in_block(value)
        )

    @given(addresses)
    def test_sector_address_within_block(self, value):
        sector = addr.sector_address(value)
        assert addr.block_address(sector) == addr.block_address(value)
        assert sector <= value < sector + addr.SECTOR_BYTES
