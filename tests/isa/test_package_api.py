"""Public-API surface tests: everything advertised in __all__ resolves."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.isa",
    "repro.trace",
    "repro.workloads",
    "repro.caches",
    "repro.btb",
    "repro.core",
    "repro.preload",
    "repro.engine",
    "repro.metrics",
    "repro.experiments",
)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"{package}.__all__ dupes"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_example_runs():
    # The module docstring advertises a workflow; keep it honest (tiny scale).
    from repro import Simulator, ZEC12_CONFIG_1, ZEC12_CONFIG_2
    from repro.workloads import DAYTRADER_DBSERV

    trace = DAYTRADER_DBSERV.trace(scale=0.02)
    base = Simulator(ZEC12_CONFIG_1).run(trace)
    with_btb2 = Simulator(ZEC12_CONFIG_2).run(trace)
    assert base.cpi > 0 and with_btb2.cpi > 0
