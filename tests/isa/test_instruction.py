"""Tests for the static instruction model and static-guess rules."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import BranchKind, static_guess


class TestInstruction:
    def test_plain_instruction(self):
        insn = Instruction(address=0x100, length=4)
        assert not insn.is_branch
        assert insn.next_sequential == 0x104

    @pytest.mark.parametrize("length", (2, 4, 6))
    def test_valid_lengths(self, length):
        assert Instruction(address=0, length=length).length == length

    @pytest.mark.parametrize("length", (0, 1, 3, 5, 8))
    def test_invalid_lengths_rejected(self, length):
        with pytest.raises(ValueError):
            Instruction(address=0, length=length)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Instruction(address=-4, length=4)

    def test_direct_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(address=0, length=4, kind=BranchKind.COND)

    def test_return_needs_no_target(self):
        insn = Instruction(address=0, length=4, kind=BranchKind.RETURN)
        assert insn.is_branch

    def test_indirect_needs_no_target(self):
        insn = Instruction(address=0, length=4, kind=BranchKind.INDIRECT)
        assert insn.is_branch

    def test_backward_detection(self):
        backward = Instruction(address=0x100, length=4, kind=BranchKind.COND,
                               target=0x80)
        forward = Instruction(address=0x100, length=4, kind=BranchKind.COND,
                              target=0x200)
        assert backward.is_backward
        assert not forward.is_backward

    def test_guess_direction_on_non_branch_raises(self):
        with pytest.raises(ValueError):
            Instruction(address=0, length=4).guess_direction()

    def test_backward_cond_guessed_taken(self):
        insn = Instruction(address=0x100, length=4, kind=BranchKind.COND,
                           target=0x80)
        assert insn.guess_direction()

    def test_forward_cond_guessed_not_taken(self):
        insn = Instruction(address=0x100, length=4, kind=BranchKind.COND,
                           target=0x200)
        assert not insn.guess_direction()


class TestBranchKind:
    @pytest.mark.parametrize(
        "kind", (BranchKind.UNCOND, BranchKind.CALL, BranchKind.RETURN,
                 BranchKind.INDIRECT)
    )
    def test_always_taken_kinds(self, kind):
        assert kind.always_taken
        assert static_guess(kind, backward=False)

    def test_cond_is_not_always_taken(self):
        assert not BranchKind.COND.always_taken

    def test_target_changing_kinds(self):
        assert BranchKind.RETURN.target_changes
        assert BranchKind.INDIRECT.target_changes
        assert not BranchKind.COND.target_changes
        assert not BranchKind.CALL.target_changes

    def test_static_guess_cond_uses_direction(self):
        assert static_guess(BranchKind.COND, backward=True)
        assert not static_guess(BranchKind.COND, backward=False)
