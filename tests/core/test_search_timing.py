"""Tests for the lookahead search pipeline timing (Tables 1 and 2)."""

import pytest

from repro.btb.btb2 import BTB2
from repro.btb.btbp import WriteSource
from repro.btb.entry import BTBEntry, STRONG_NOT_TAKEN
from repro.core.config import PredictorConfig
from repro.core.hierarchy import FirstLevelPredictor
from repro.core.search import (
    BROADCAST_LATENCY,
    COST_FIT,
    COST_NOT_TAKEN,
    COST_NOT_TAKEN_SECOND_IN_ROW,
    COST_SINGLE_BRANCH_LOOP,
    COST_TAKEN_MRU,
    COST_TAKEN_NON_MRU,
    LookaheadSearch,
    MISS_DETECT_LATENCY,
    SEQUENTIAL_CYCLES_PER_ROW,
)
from repro.isa.address import ROW_BYTES


def make_search(miss_limit=4, on_miss=None):
    config = PredictorConfig(
        btb1_rows=64, btb1_ways=4, btbp_rows=16, btbp_ways=4,
        pht_entries=64, ctb_entries=64, fit_entries=4,
        surprise_bht_entries=64, miss_search_limit=miss_limit,
    )
    hierarchy = FirstLevelPredictor(config, btb2=None)
    search = LookaheadSearch(hierarchy, miss_limit=miss_limit, on_miss=on_miss)
    search.restart(0x1000, 0)
    return hierarchy, search


def install_taken(hierarchy, address, target):
    entry = BTBEntry(address=address, target=target)
    hierarchy.btb1.install(entry)
    return entry


class TestPredictionTiming:
    def test_broadcast_latency_is_four_cycles(self):
        hierarchy, search = make_search()
        install_taken(hierarchy, 0x1004, 0x2000)
        outcome = search.advance_to_branch(0x1004)
        assert outcome.prediction is not None
        assert outcome.prediction.ready_cycle == BROADCAST_LATENCY

    def test_single_branch_loop_predicts_every_cycle(self):
        hierarchy, search = make_search()
        install_taken(hierarchy, 0x1004, 0x1000)
        search.advance_to_branch(0x1004)
        cycle_before = search.cycle
        search.advance_to_branch(0x1004)
        assert search.cycle - cycle_before == COST_SINGLE_BRANCH_LOOP

    def test_fit_hit_costs_two_cycles(self):
        hierarchy, search = make_search()
        # Two-branch loop: A -> B -> A; the second trip is FIT-controlled.
        install_taken(hierarchy, 0x1004, 0x2000)
        install_taken(hierarchy, 0x2004, 0x1000)
        search.advance_to_branch(0x1004)
        search.advance_to_branch(0x2004)
        # Second loop iteration: both branches now FIT-resident.
        before = search.cycle
        search.advance_to_branch(0x1004)
        assert search.cycle - before == COST_FIT

    def test_first_taken_prediction_from_mru_costs_three(self):
        hierarchy, search = make_search(miss_limit=8)
        install_taken(hierarchy, 0x1004, 0x2000)
        before = search.cycle
        search.advance_to_branch(0x1004)
        assert search.cycle - before == COST_TAKEN_MRU

    def test_non_mru_taken_costs_four(self):
        hierarchy, search = make_search()
        target_entry = install_taken(hierarchy, 0x1004, 0x2000)
        # Install a second branch in the same row to displace MRU.
        other = install_taken(hierarchy, 0x1010, 0x3000)
        assert hierarchy.btb1.is_mru(other)
        before = search.cycle
        outcome = search.advance_to_branch(0x1004)
        assert outcome.prediction.entry is target_entry
        assert not outcome.prediction.from_mru
        assert search.cycle - before == COST_TAKEN_NON_MRU

    def test_not_taken_costs_four(self):
        hierarchy, search = make_search()
        entry = BTBEntry(address=0x1004, target=0x2000,
                         counter=STRONG_NOT_TAKEN)
        hierarchy.btb1.install(entry)
        before = search.cycle
        outcome = search.advance_to_branch(0x1004)
        assert not outcome.prediction.taken
        assert search.cycle - before == COST_NOT_TAKEN

    def test_second_not_taken_in_row_costs_one(self):
        hierarchy, search = make_search()
        first = BTBEntry(address=0x1004, target=0x2000,
                         counter=STRONG_NOT_TAKEN)
        second = BTBEntry(address=0x100C, target=0x3000,
                          counter=STRONG_NOT_TAKEN)
        hierarchy.btb1.install(first)
        hierarchy.btb1.install(second)
        search.advance_to_branch(0x1004)
        before = search.cycle
        search.advance_to_branch(0x100C)
        assert search.cycle - before == COST_NOT_TAKEN_SECOND_IN_ROW

    def test_sequential_gap_rate_16_bytes_per_cycle(self):
        hierarchy, search = make_search(miss_limit=100)
        install_taken(hierarchy, 0x1104, 0x2000)  # 8 rows ahead
        search.advance_to_branch(0x1104)
        # 8 gap rows at 2 cycles each, plus the prediction cost.
        assert search.cycle == 8 * SEQUENTIAL_CYCLES_PER_ROW + COST_TAKEN_MRU

    def test_taken_prediction_redirects_searcher(self):
        hierarchy, search = make_search()
        install_taken(hierarchy, 0x1004, 0x2000)
        search.advance_to_branch(0x1004)
        assert search.search_address == 0x2000

    def test_not_taken_prediction_continues_in_row(self):
        hierarchy, search = make_search()
        entry = BTBEntry(address=0x1004, target=0x2000,
                         counter=STRONG_NOT_TAKEN)
        hierarchy.btb1.install(entry)
        search.advance_to_branch(0x1004)
        assert search.search_address == 0x1006


class TestMissDetection:
    def test_miss_reported_after_limit_empty_searches(self):
        reports = []
        hierarchy, search = make_search(miss_limit=4, on_miss=reports.append)
        # Branch 6 rows ahead: 6 empty searches -> one miss report.
        install_taken(hierarchy, 0x10C4, 0x2000)
        outcome = search.advance_to_branch(0x10C4)
        assert len(outcome.miss_reports) == 1
        assert reports == outcome.miss_reports

    def test_miss_reported_at_starting_search_address(self):
        hierarchy, search = make_search(miss_limit=3)
        install_taken(hierarchy, 0x10C4, 0x2000)
        outcome = search.advance_to_branch(0x10C4)
        assert outcome.miss_reports[0].search_address == 0x1000

    def test_miss_detected_at_b3_of_last_search(self):
        hierarchy, search = make_search(miss_limit=3)
        install_taken(hierarchy, 0x10C4, 0x2000)
        outcome = search.advance_to_branch(0x10C4)
        # Two full empty searches precede the third's completion.
        expected = 2 * SEQUENTIAL_CYCLES_PER_ROW + MISS_DETECT_LATENCY
        assert outcome.miss_reports[0].cycle == expected

    @pytest.mark.parametrize("miss_limit", (1, 2, 4, 6))
    @pytest.mark.parametrize("restart_cycle", (0, 37))
    def test_table2_report_lands_on_b3_of_limit_th_empty_search(
        self, miss_limit, restart_cycle
    ):
        # Table 2 pin: empty search k starts its b0 at
        # ``restart + (k-1) * SEQUENTIAL_CYCLES_PER_ROW`` (the 2 cycles per
        # row are b0-to-b0 throughput), and the miss is detected at the b3
        # stage of search ``miss_limit`` — three cycles after that b0, NOT
        # after the row's throughput charge.  ``_note_empty_search`` stamps
        # before charging the row to get exactly this.
        hierarchy, search = make_search(miss_limit=miss_limit)
        search.restart(0x1000, restart_cycle)
        branch_address = 0x1000 + miss_limit * ROW_BYTES + 4
        install_taken(hierarchy, branch_address, 0x2000)
        outcome = search.advance_to_branch(branch_address)
        assert len(outcome.miss_reports) == 1
        assert outcome.miss_reports[0].cycle == (
            restart_cycle
            + (miss_limit - 1) * SEQUENTIAL_CYCLES_PER_ROW
            + MISS_DETECT_LATENCY
        )
        assert outcome.miss_reports[0].search_address == 0x1000

    def test_no_miss_below_limit(self):
        hierarchy, search = make_search(miss_limit=4)
        install_taken(hierarchy, 0x1064, 0x2000)  # only 3 empty rows
        outcome = search.advance_to_branch(0x1064)
        assert outcome.miss_reports == []

    def test_counter_resets_after_report(self):
        hierarchy, search = make_search(miss_limit=2)
        install_taken(hierarchy, 0x1104, 0x2000)  # 8 empty rows
        outcome = search.advance_to_branch(0x1104)
        assert len(outcome.miss_reports) == 4  # 8 empties / limit 2

    def test_prediction_resets_counter(self):
        hierarchy, search = make_search(miss_limit=4)
        install_taken(hierarchy, 0x1044, 0x1080)  # 2 empty rows then hit
        search.advance_to_branch(0x1044)
        install_taken(hierarchy, 0x10C4, 0x2000)  # 2 more empty rows
        outcome = search.advance_to_branch(0x10C4)
        assert outcome.miss_reports == []

    def test_restart_resets_counter(self):
        hierarchy, search = make_search(miss_limit=4)
        install_taken(hierarchy, 0x1074, 0x2000)
        search.advance_to_branch(0x1074)  # 3 empties
        search.restart(0x5000, 100)
        install_taken(hierarchy, 0x5024, 0x6000)  # 1 more empty
        outcome = search.advance_to_branch(0x5024)
        assert outcome.miss_reports == []


class TestSurpriseShapes:
    def test_absent_branch_yields_no_prediction(self):
        hierarchy, search = make_search()
        outcome = search.advance_to_branch(0x1004)
        assert outcome.prediction is None

    def test_empty_probe_advances_to_next_row(self):
        hierarchy, search = make_search()
        search.advance_to_branch(0x1004)
        assert search.search_address == 0x1020

    def test_already_covered_row_returns_silently(self):
        hierarchy, search = make_search()
        search.advance_to_branch(0x1004)  # covers row 0x1000, moves on
        cycle = search.cycle
        outcome = search.advance_to_branch(0x1008)  # same covered row
        assert outcome.prediction is None
        assert outcome.miss_reports == []
        assert search.cycle == cycle

    def test_later_branch_hit_holds_position(self):
        hierarchy, search = make_search()
        install_taken(hierarchy, 0x1010, 0x2000)
        outcome = search.advance_to_branch(0x1004)  # absent earlier branch
        assert outcome.prediction is None
        assert search.search_address == 0x1000  # held
        # The later branch is then predicted normally.
        assert search.advance_to_branch(0x1010).prediction is not None


class TestRunAhead:
    def test_run_ahead_emits_miss_reports(self):
        reports = []
        hierarchy, search = make_search(miss_limit=4, on_miss=reports.append)
        search.run_ahead(until_cycle=40)
        # 20 rows covered in 40 cycles -> 5 reports at limit 4.
        assert len(reports) == 5

    def test_run_ahead_respects_clock_budget(self):
        hierarchy, search = make_search()
        search.run_ahead(until_cycle=7)
        assert search.cycle <= 7

    def test_run_ahead_stops_at_first_resident_row(self):
        hierarchy, search = make_search()
        install_taken(hierarchy, 0x1044, 0x2000)  # 2 rows ahead
        search.run_ahead(until_cycle=100)
        assert search.search_address == 0x1040
