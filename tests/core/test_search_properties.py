"""Property tests on lookahead-search invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btb.entry import BTBEntry
from repro.core.config import PredictorConfig
from repro.core.hierarchy import FirstLevelPredictor
from repro.core.search import LookaheadSearch

BASE = 0x10_0000

# Branch layouts: sorted, unique, halfword addresses above BASE.
branch_sets = st.lists(
    st.integers(min_value=0, max_value=0x7FF).map(lambda v: BASE + v * 2),
    unique=True, min_size=1, max_size=25,
).map(sorted)

install_masks = st.integers(min_value=0)


def make_search(miss_limit=4):
    config = PredictorConfig(
        btb1_rows=64, btb1_ways=4, btbp_rows=16, btbp_ways=4,
        pht_entries=64, ctb_entries=64, fit_entries=4,
        surprise_bht_entries=64, miss_search_limit=miss_limit,
    )
    hierarchy = FirstLevelPredictor(config, btb2=None)
    search = LookaheadSearch(hierarchy, miss_limit=miss_limit)
    search.restart(BASE, 0)
    return hierarchy, search


@settings(max_examples=150)
@given(branch_sets, install_masks)
def test_clock_monotonic_and_predictions_exact(branches, mask):
    """Walking any branch layout: the clock never goes backward, any
    prediction returned is for exactly the requested branch, and installed
    not-taken branches are the only sources of predictions."""
    hierarchy, search = make_search()
    installed = set()
    for index, address in enumerate(branches):
        if (mask >> index) & 1:
            # Not-taken branches keep the walk sequential and the invariant
            # simple: the searcher never redirects away from the path.
            hierarchy.btb1.install(
                BTBEntry(address=address, target=address + 0x40, counter=0)
            )
            installed.add(address)
    previous_cycle = search.cycle
    for address in branches:
        outcome = search.advance_to_branch(address)
        assert search.cycle >= previous_cycle
        previous_cycle = search.cycle
        if outcome.prediction is not None:
            assert outcome.prediction.branch_address == address
            assert address in installed
        for report in outcome.miss_reports:
            assert report.cycle >= 0


@settings(max_examples=100)
@given(branch_sets)
def test_empty_tables_report_misses_proportionally(branches):
    """With nothing installed, every gap of miss_limit rows reports once."""
    hierarchy, search = make_search(miss_limit=2)
    total_reports = 0
    for address in branches:
        outcome = search.advance_to_branch(address)
        assert outcome.prediction is None
        total_reports += len(outcome.miss_reports)
    assert total_reports <= search.empty_searches // 2 + 1


@settings(max_examples=100)
@given(st.integers(min_value=1, max_value=64))
def test_run_ahead_budget_respected(budget):
    hierarchy, search = make_search()
    search.run_ahead(until_cycle=budget)
    assert search.cycle <= budget
