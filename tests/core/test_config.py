"""Tests for predictor configurations (Table 3)."""

import pytest

from repro.core.config import (
    ExclusivityMode,
    FilterMode,
    PredictorConfig,
    TABLE3_CONFIGS,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)


class TestTable3:
    def test_three_configurations(self):
        assert len(TABLE3_CONFIGS) == 3

    def test_config1_no_btb2(self):
        assert not ZEC12_CONFIG_1.btb2_enabled
        assert ZEC12_CONFIG_1.btb2_capacity == 0
        assert ZEC12_CONFIG_1.btb1_capacity == 4096

    def test_config2_btb2_enabled(self):
        assert ZEC12_CONFIG_2.btb2_enabled
        assert ZEC12_CONFIG_2.btb2_capacity == 24 * 1024
        assert ZEC12_CONFIG_2.btb1_capacity == 4096

    def test_config3_large_btb1(self):
        assert not ZEC12_CONFIG_3.btb2_enabled
        assert ZEC12_CONFIG_3.btb1_capacity == 24 * 1024

    def test_btbp_identical_across_configs(self):
        # The paper's Table 3 prints "128 x 8" for config 1, but every other
        # mention of the BTBP says 768 = 128 x 6; we normalize (DESIGN.md §3).
        for config in TABLE3_CONFIGS:
            assert config.btbp_rows == 128
            assert config.btbp_ways == 6

    def test_architected_defaults(self):
        config = PredictorConfig()
        assert config.miss_search_limit == 4
        assert config.tracker_count == 3
        assert config.filter_mode is FilterMode.PARTIAL
        assert config.exclusivity is ExclusivityMode.SEMI_EXCLUSIVE
        assert config.steering_enabled


class TestValidationAndDerivation:
    def test_with_derives_variant(self):
        variant = ZEC12_CONFIG_2.with_(tracker_count=8, name="8 trackers")
        assert variant.tracker_count == 8
        assert ZEC12_CONFIG_2.tracker_count == 3

    def test_name_excluded_from_equality(self):
        assert ZEC12_CONFIG_2 == ZEC12_CONFIG_2.with_(name="other")

    def test_bad_miss_limit_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(miss_search_limit=0)

    def test_negative_trackers_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(tracker_count=-1)

    def test_bad_partial_rows_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(partial_search_rows=0)
