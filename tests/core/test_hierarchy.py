"""Tests for the first-level hierarchy wiring and move protocol."""

from repro.btb.btb2 import BTB2
from repro.btb.btbp import WriteSource
from repro.btb.entry import BTBEntry, STRONG_NOT_TAKEN
from repro.core.config import ExclusivityMode, PredictorConfig
from repro.core.events import PredictionLevel
from repro.core.hierarchy import FirstLevelPredictor, RowHit
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord


def small_config(**overrides):
    defaults = dict(
        btb1_rows=8, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        pht_entries=64, ctb_entries=64, fit_entries=4,
        surprise_bht_entries=64,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


def make_hierarchy(**overrides):
    config = small_config(**overrides)
    btb2 = BTB2(rows=8, ways=2) if config.btb2_enabled else None
    return FirstLevelPredictor(config, btb2=btb2)


def taken_record(address, target):
    return TraceRecord(address=address, length=4, kind=BranchKind.COND,
                       taken=True, target=target)


class TestParallelRead:
    def test_finds_btb1_entry(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x200)
        h.btb1.install(entry)
        (hit,) = h.hits_in_row(0x100)
        assert hit.entry is entry
        assert hit.level is PredictionLevel.BTB1

    def test_finds_btbp_entry(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x200)
        h.btbp.write(entry, WriteSource.SURPRISE)
        (hit,) = h.hits_in_row(0x100)
        assert hit.level is PredictionLevel.BTBP

    def test_btb1_wins_duplicates(self):
        h = make_hierarchy()
        h.btbp.write(BTBEntry(address=0x104, target=0x111), WriteSource.SURPRISE)
        h.btb1.install(BTBEntry(address=0x104, target=0x222))
        (hit,) = h.hits_in_row(0x100)
        assert hit.level is PredictionLevel.BTB1
        assert hit.entry.target == 0x222

    def test_filters_by_search_offset(self):
        h = make_hierarchy()
        h.btb1.install(BTBEntry(address=0x104, target=0x200))
        assert h.hits_in_row(0x108) == []

    def test_results_sorted_by_address(self):
        h = make_hierarchy()
        h.btb1.install(BTBEntry(address=0x118, target=0x1))
        h.btbp.write(BTBEntry(address=0x104, target=0x2), WriteSource.SURPRISE)
        hits = h.hits_in_row(0x100)
        assert [hit.entry.address for hit in hits] == [0x104, 0x118]

    def test_first_hit(self):
        h = make_hierarchy()
        h.btb1.install(BTBEntry(address=0x118, target=0x1))
        assert h.first_hit_in_row(0x100).entry.address == 0x118
        assert h.first_hit_in_row(0x120) is None


class TestMoveProtocol:
    def test_btbp_prediction_promotes_to_btb1(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x200)
        h.btbp.write(entry, WriteSource.SURPRISE)
        h.use_prediction(RowHit(entry, PredictionLevel.BTBP, False))
        assert h.btb1.lookup(0x104) is entry
        assert h.btbp.lookup(0x104) is None
        assert h.btbp_promotions == 1

    def test_btb1_victim_flows_to_btbp_and_btb2(self):
        h = make_hierarchy()
        # Fill the BTB1 row so promotion evicts a victim.
        v1 = BTBEntry(address=0x100, target=0x1)
        v2 = BTBEntry(address=0x108, target=0x2)
        h.btb1.install(v1)
        h.btb1.install(v2)
        promoted = BTBEntry(address=0x110, target=0x3)
        h.btbp.write(promoted, WriteSource.BTB2_HIT)
        h.use_prediction(RowHit(promoted, PredictionLevel.BTBP, False))
        # v1 was LRU: it must now be in the BTBP and the BTB2.
        assert h.btbp.lookup(0x100) is v1
        assert h.btb2.lookup(0x100) is not None
        assert h.btb2.victim_writes == 1

    def test_btb1_prediction_refreshes_mru(self):
        h = make_hierarchy()
        a = BTBEntry(address=0x100, target=0x1)
        b = BTBEntry(address=0x108, target=0x2)
        h.btb1.install(a)
        h.btb1.install(b)  # MRU=b
        h.use_prediction(RowHit(a, PredictionLevel.BTB1, False))
        assert h.btb1.is_mru(a)

    def test_no_victim_writeback_mode(self):
        h = make_hierarchy(exclusivity=ExclusivityMode.NO_VICTIM_WRITEBACK)
        h.btb1.install(BTBEntry(address=0x100, target=0x1))
        h.btb1.install(BTBEntry(address=0x108, target=0x2))
        promoted = BTBEntry(address=0x110, target=0x3)
        h.btbp.write(promoted, WriteSource.BTB2_HIT)
        h.use_prediction(RowHit(promoted, PredictionLevel.BTBP, False))
        assert h.btb2.victim_writes == 0


class TestInstalls:
    def test_surprise_install_writes_btbp_and_btb2(self):
        h = make_hierarchy()
        record = taken_record(0x104, 0x300)
        entry = h.surprise_install(record)
        assert h.btbp.lookup(0x104) is entry
        assert h.btb2.lookup(0x104) is not None
        assert h.btb2.lookup(0x104) is not entry  # clone in the BTB2
        assert h.surprise_installs == 1

    def test_surprise_install_without_btb2(self):
        h = make_hierarchy(btb2_enabled=False)
        h.btb2 = None
        record = taken_record(0x104, 0x300)
        h.surprise_install(record)
        assert h.btbp.lookup(0x104) is not None

    def test_btbp_disabled_surprises_go_to_btb1(self):
        h = make_hierarchy(btbp_enabled=False)
        record = taken_record(0x104, 0x300)
        h.surprise_install(record)
        assert h.btbp is None
        assert h.btb1.lookup(0x104) is not None

    def test_preload_write_lands_in_btbp(self):
        h = make_hierarchy()
        h.preload_write(BTBEntry(address=0x104, target=0x300))
        assert h.btbp.lookup(0x104) is not None
        assert h.btbp.writes_by_source[WriteSource.BTB2_HIT] == 1


class TestContentResolution:
    def test_bimodal_drives_direction_and_target(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300)
        resolution = h.resolve_content(entry)
        assert resolution.taken
        assert resolution.target == 0x300
        assert not resolution.used_pht and not resolution.used_ctb

    def test_not_taken_has_no_target(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300, counter=STRONG_NOT_TAKEN)
        resolution = h.resolve_content(entry)
        assert not resolution.taken
        assert resolution.target is None

    def test_pht_overrides_bimodal_when_enabled_and_tagged(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300, use_pht=True)
        h.pht.update(0x104, h.history, taken=False)
        h.pht.update(0x104, h.history, taken=False)
        resolution = h.resolve_content(entry)
        assert resolution.used_pht
        assert not resolution.taken

    def test_pht_ignored_without_control_bit(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300)
        h.pht.update(0x104, h.history, taken=False)
        h.pht.update(0x104, h.history, taken=False)
        assert h.resolve_content(entry).taken  # bimodal wins

    def test_ctb_overrides_target_when_trusted(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300, use_ctb=True)
        h.ctb.update(0x104, h.history, target=0x500)
        resolution = h.resolve_content(entry)
        assert resolution.used_ctb
        assert resolution.target == 0x500

    def test_ctb_ignored_when_confidence_low(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300, use_ctb=True,
                         ctb_confidence=0)
        h.ctb.update(0x104, h.history, target=0x500)
        assert h.resolve_content(entry).target == 0x300


class TestTraining:
    def test_train_updates_counter_and_target(self):
        h = make_hierarchy()
        entry = BTBEntry(address=0x104, target=0x300)
        h.train(entry, taken_record(0x104, 0x400))
        assert entry.target == 0x400

    def test_resolved_branch_feeds_history_and_surprise_bht(self):
        h = make_hierarchy()
        record = taken_record(0x104, 0x400)
        h.record_resolved_branch(record)
        _, addresses = h.history.snapshot()
        assert addresses == (0x104,)

    def test_probe_level(self):
        h = make_hierarchy()
        assert h.probe_level(0x104) is None
        h.btbp.write(BTBEntry(address=0x104, target=0x1), WriteSource.SURPRISE)
        assert h.probe_level(0x104) is PredictionLevel.BTBP
        h.btb1.install(BTBEntry(address=0x104, target=0x1))
        assert h.probe_level(0x104) is PredictionLevel.BTB1
