"""The lockstep differential oracle: clean on main, teeth when mutated."""

import pytest

from repro.audit.fuzz import FUZZ_CONFIGS, build_trace
from repro.btb.storage import BranchTargetBuffer
from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.oracle import (
    DifferentialRunner,
    mutation_drill,
    shrink_divergence,
)

from tests.conftest import loop_trace

SMALL = FUZZ_CONFIGS["small baseline"]


class TestCleanLockstep:
    def test_loop_trace_full_hierarchy(self):
        result = DifferentialRunner(ZEC12_CONFIG_2).run(loop_trace(200))
        assert not result.diverged, result.report()
        assert result.branches == 200
        # The oracle must actually be comparing, not vacuously passing.
        assert result.events_compared > result.branches
        assert result.full_compares >= 1

    def test_btb2less_config(self):
        result = DifferentialRunner(ZEC12_CONFIG_1).run(loop_trace(100))
        assert not result.diverged, result.report()

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_fuzz_traces_on_small_config(self, seed):
        trace = build_trace(seed, length=500)
        result = DifferentialRunner(SMALL).run(trace)
        assert not result.diverged, result.report()

    @pytest.mark.slow
    @pytest.mark.fuzz
    @pytest.mark.parametrize("name", sorted(FUZZ_CONFIGS))
    def test_every_fuzz_config_is_conformant(self, name):
        for seed in range(4):
            trace = build_trace(0xD1F ^ seed, length=600)
            result = DifferentialRunner(FUZZ_CONFIGS[name]).run(trace)
            assert not result.diverged, result.report()


class TestMutationTeeth:
    def test_drill_catches_inverted_lru_touch(self):
        result = mutation_drill()
        assert result is not None, "seeded LRU mutation went undetected"
        assert result.diverged
        divergence = result.divergence
        assert "BTB" in divergence.structure or "row" in divergence.structure
        assert divergence.record_index < result.records
        report = divergence.report()
        assert "divergence at record" in report
        assert divergence.structure in report

    def test_monkeypatched_demotion_bug_is_caught_and_shrunk(
        self, monkeypatch
    ):
        # An independent sabotage from the drill's: used predictions never
        # refresh recency at all.
        monkeypatch.setattr(BranchTargetBuffer, "touch", lambda self, e: None)
        trace = None
        for seed in range(16):
            candidate = build_trace(0xBEEF ^ seed, length=400)
            if DifferentialRunner(SMALL).run(candidate).diverged:
                trace = candidate
                break
        assert trace is not None, "no trace exposed the disabled LRU touch"
        shrunk = shrink_divergence(trace, SMALL)
        assert len(shrunk) < len(trace)
        assert DifferentialRunner(SMALL).run(shrunk).diverged

    def test_sabotage_does_not_leak(self):
        # The drill (and any monkeypatching test above) must leave the
        # production class untouched for the rest of the suite.
        result = DifferentialRunner(SMALL).run(build_trace(99, length=300))
        assert not result.diverged, result.report()


class TestDivergenceReporting:
    def test_report_names_structure_cycle_and_address(self):
        result = mutation_drill(cases=4)
        assert result is not None and result.divergence is not None
        divergence = result.divergence
        assert divergence.cycle >= 0
        assert divergence.branch_address is not None
        report = divergence.report()
        assert f"0x{divergence.branch_address:x}" in report
        assert f"cycle {divergence.cycle}" in report
