"""Self-checks for the reference model's simple structures.

The reference predictor is the trusted side of the differential oracle,
so its own structures get direct unit coverage: the stamp-based LRU must
behave exactly like an LRU, the tagged tables like tagged tables.  The
cross-checks against the production engine live in
``test_differential.py``.
"""

from repro.core.config import ZEC12_CONFIG_2
from repro.isa.opcodes import BranchKind
from repro.oracle.reference import (
    RefBTB,
    RefEntry,
    RefFIT,
    RefHistory,
    RefPHT,
    RefSurpriseBHT,
    ReferencePredictor,
    WEAK_TAKEN,
    always_taken,
    static_guess,
)

ROW = 0x1000  # one 32-byte row; addresses ROW..ROW+31 share it


def entry(address: int, target: int = 0x2000) -> RefEntry:
    return RefEntry(address=address, target=target, kind=BranchKind.COND)


class TestRefBTBLRU:
    def test_install_then_lookup(self):
        btb = RefBTB(rows=4, ways=2)
        one = entry(ROW)
        assert btb.install(one) is None
        assert btb.lookup(ROW) is one
        assert btb.lookup(ROW + 2) is None

    def test_victim_is_least_recently_used(self):
        btb = RefBTB(rows=4, ways=2)
        first, second, third = entry(ROW), entry(ROW + 2), entry(ROW + 4)
        btb.install(first)
        btb.install(second)
        btb.touch(first)  # second is now LRU
        victim = btb.install(third)
        assert victim is second
        assert btb.evictions == 1

    def test_demote_marks_next_victim(self):
        btb = RefBTB(rows=4, ways=2)
        first, second, third = entry(ROW), entry(ROW + 2), entry(ROW + 4)
        btb.install(first)
        btb.install(second)  # second is MRU
        btb.demote(second)
        assert btb.install(third) is second

    def test_same_address_replaces_in_place(self):
        btb = RefBTB(rows=4, ways=2)
        btb.install(entry(ROW))
        replacement = entry(ROW, target=0x3000)
        assert btb.install(replacement) is None
        assert btb.installs == 1  # replacement is not a new install
        assert btb.lookup(ROW) is replacement

    def test_mru_first_orders_by_recency(self):
        btb = RefBTB(rows=4, ways=4)
        first, second = entry(ROW), entry(ROW + 2)
        btb.install(first)
        btb.install(second)
        btb.touch(first)
        assert btb.mru_first(ROW) == [first, second]
        assert btb.is_mru(first) and not btb.is_mru(second)

    def test_search_row_is_row_scoped_and_sorted(self):
        btb = RefBTB(rows=4, ways=4)
        inside_late = entry(ROW + 8)
        inside_early = entry(ROW + 2)
        btb.install(inside_late)
        btb.install(inside_early)
        btb.install(entry(ROW + 4 * 32 * 4))  # same index, different row tag
        assert btb.search_row(ROW) == [inside_early, inside_late]


class TestTaggedTables:
    def test_pht_tag_mismatch_returns_none(self):
        pht = RefPHT(entries=64)
        pht.update(ROW, index=5, taken=True)
        assert pht.predict(ROW, index=5) is True
        # Same index, different tag: a miss, and stats notice.
        assert pht.predict(ROW + 2, index=5) is None
        assert pht.tag_hits == 1 and pht.tag_misses == 1

    def test_pht_counter_saturates(self):
        pht = RefPHT(entries=64)
        pht.update(ROW, 3, taken=True)
        for _ in range(5):
            pht.update(ROW, 3, taken=False)
        assert pht.predict(ROW, 3) is False

    def test_fit_is_lru_bounded(self):
        fit = RefFIT(entries=2)
        fit.train(0x10, 1)
        fit.train(0x20, 2)
        assert fit.probe(0x10)  # moves 0x10 to MRU
        fit.train(0x30, 3)      # evicts 0x20
        assert not fit.probe(0x20)
        assert fit.probe(0x30)

    def test_surprise_bht_static_then_learned(self):
        bht = RefSurpriseBHT(entries=64)
        backward = True
        assert bht.guess(ROW, BranchKind.COND, backward) is True  # BTFNT
        bht.update(ROW, BranchKind.COND, taken=False)
        assert bht.guess(ROW, BranchKind.COND, backward) is False

    def test_kind_rules(self):
        assert always_taken(BranchKind.CALL)
        assert not always_taken(BranchKind.COND)
        assert static_guess(BranchKind.RETURN, backward=False)
        assert not static_guess(BranchKind.COND, backward=False)


class TestRefHistory:
    def test_depth_is_bounded(self):
        history = RefHistory()
        for i in range(40):
            history.record(ROW + 2 * i, taken=True)
        assert len(history.directions) == 12
        assert len(history.taken_addresses) == 12

    def test_indices_depend_on_path(self):
        one, two = RefHistory(), RefHistory()
        one.record(ROW, taken=True)
        two.record(ROW + 0x400, taken=True)
        assert one.ctb_index(4096) != two.ctb_index(4096)

    def test_not_taken_leaves_address_path_alone(self):
        history = RefHistory()
        history.record(ROW, taken=True)
        before = history.ctb_index(4096)
        history.record(ROW + 2, taken=False)
        assert history.ctb_index(4096) == before


class TestReferencePredictorShape:
    def test_state_dict_matches_production_schema(self):
        oracle = ReferencePredictor(ZEC12_CONFIG_2)
        state = oracle.state_dict()
        hierarchy = state["hierarchy"]
        assert set(hierarchy) >= {
            "btb1", "btbp", "pht", "ctb", "fit", "surprise_bht", "history",
            "btbp_promotions", "surprise_installs",
        }
        assert state["btb2"] is not None
        assert hierarchy["btb1"]["rows"] == []

    def test_entry_clone_is_equal_but_distinct(self):
        original = entry(ROW)
        original.counter = WEAK_TAKEN + 1
        copy = original.clone()
        assert copy is not original
        assert copy.state_dict() == original.state_dict()
