"""Golden-baseline gate logic, exercised without real measurements.

``compare_baseline`` re-measures through the (expensive) experiment pool;
these tests monkeypatch the measurement step so the comparison semantics
— tolerances, drift detection, schema checks, workload selection — are
pinned cheaply.  The real end-to-end gate runs under ``repro verify``
(full CI tier, ``tests/test_cli.py``).
"""

import pytest

from repro.oracle import golden


def metrics(cpi: float = 1.5, branches: int = 1000) -> dict:
    return {
        "cpi": cpi,
        "accuracy": 0.95,
        "bad_outcome_fraction": 0.05,
        "instructions": 50_000,
        "branches": branches,
        "preload": {"rows_read": 120, "entries_transferred": 300},
    }


def baseline(workload_metrics: dict) -> dict:
    return {
        "schema": golden.GOLDEN_SCHEMA,
        "config": "zEC12 config 2",
        "scale": 0.02,
        "tolerances": dict(golden.DEFAULT_TOLERANCES),
        "workloads": workload_metrics,
    }


@pytest.fixture
def measured(monkeypatch):
    """Patch re-measurement to return a controllable dict."""
    store = {}

    def fake_measure(scale, config=None, jobs=None, workloads=None,
                     engine_mode="object"):
        return {
            name: block for name, block in store.items()
            if workloads is None or name in workloads
        }

    monkeypatch.setattr(golden, "measure_workloads", fake_measure)
    return store


class TestCompareBaseline:
    def test_identical_measurement_passes(self, measured):
        measured["TPF"] = metrics()
        assert golden.compare_baseline(baseline({"TPF": metrics()})) == []

    def test_float_drift_is_caught_and_named(self, measured):
        measured["TPF"] = metrics(cpi=1.5001)
        problems = golden.compare_baseline(baseline({"TPF": metrics()}))
        assert len(problems) == 1
        assert "TPF" in problems[0] and "cpi" in problems[0]

    def test_tiny_float_noise_within_tolerance(self, measured):
        measured["TPF"] = metrics(cpi=1.5 * (1 + 1e-12))
        assert golden.compare_baseline(baseline({"TPF": metrics()})) == []

    def test_integer_drift_is_exact(self, measured):
        measured["TPF"] = metrics(branches=1001)
        problems = golden.compare_baseline(baseline({"TPF": metrics()}))
        assert any("branches" in p for p in problems)

    def test_nested_preload_drift_is_caught(self, measured):
        block = metrics()
        block["preload"]["rows_read"] = 121
        measured["TPF"] = block
        problems = golden.compare_baseline(baseline({"TPF": metrics()}))
        assert any("preload" in p and "rows_read" in p for p in problems)

    def test_missing_workload_reported(self, measured):
        problems = golden.compare_baseline(baseline({"TPF": metrics()}))
        assert problems == ["TPF: workload missing from the catalog"]

    def test_new_metric_not_in_baseline_reported(self, measured):
        block = metrics()
        block["novel"] = 3
        measured["TPF"] = block
        problems = golden.compare_baseline(baseline({"TPF": metrics()}))
        assert any("novel" in p and "not in baseline" in p for p in problems)

    def test_workload_selection_restricts_the_gate(self, measured):
        measured["TPF"] = metrics()
        measured["Other"] = metrics(cpi=9.9)  # would fail if selected
        gold = baseline({"TPF": metrics(), "Other": metrics()})
        assert golden.compare_baseline(gold, workloads=("TPF",)) == []

    def test_empty_selection_is_an_error(self, measured):
        gold = baseline({"TPF": metrics()})
        problems = golden.compare_baseline(gold, workloads=("nonesuch",))
        assert problems == ["no workloads selected from the golden baseline"]


class TestBaselineFile:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "gold.json"
        document = baseline({"TPF": metrics()})
        golden.write_baseline(path, document)
        assert golden.load_baseline(path) == document

    def test_write_is_deterministic(self, tmp_path):
        document = baseline({"B": metrics(), "A": metrics()})
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        golden.write_baseline(first, document)
        golden.write_baseline(second, document)
        assert first.read_text() == second.read_text()

    def test_unknown_schema_is_rejected_with_hint(self, tmp_path):
        path = tmp_path / "gold.json"
        golden.write_baseline(path, {"schema": 999})
        with pytest.raises(ValueError, match="--update-golden"):
            golden.load_baseline(path)

    def test_repo_baseline_is_loadable_and_complete(self):
        from repro.workloads.catalog import TABLE4_WORKLOADS

        document = golden.load_baseline(golden.GOLDEN_PATH)
        assert set(document["workloads"]) == {
            spec.name for spec in TABLE4_WORKLOADS
        }
        assert document["scale"] == golden.GOLDEN_SCALE
