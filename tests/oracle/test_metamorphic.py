"""Metamorphic invariances: transforms that must not change behavior."""

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.oracle.metamorphic import (
    RELABEL_GRANULE,
    check_relabel_invariance,
    permute_regions,
    relabel,
    run_counters,
)
from repro.sampling import SamplingPlan, run_sampled

from tests.conftest import BASE, loop_trace

REGION = 1 << 30


def two_region_trace() -> list:
    """Two program modules in distinct coarse address regions."""
    first = loop_trace(iterations=60, start=BASE)
    second = loop_trace(iterations=40, start=BASE + REGION + 0x40)
    return first + second + first[: len(first) // 2]


class TestRelabel:
    def test_rejects_unaligned_offset(self):
        with pytest.raises(ValueError):
            relabel(loop_trace(2), offset=RELABEL_GRANULE // 2)

    def test_relabel_preserves_every_counter(self):
        problems = check_relabel_invariance(
            loop_trace(iterations=120), config=ZEC12_CONFIG_2
        )
        assert problems == []

    def test_relabel_preserves_counters_on_multi_region_trace(self):
        problems = check_relabel_invariance(
            two_region_trace(), config=ZEC12_CONFIG_2,
            offset=-16 * RELABEL_GRANULE,
        )
        assert problems == []


class TestRegionPermutation:
    def test_single_region_is_identity(self):
        trace = loop_trace(iterations=10)
        assert permute_regions(trace) == trace

    def test_rejects_index_disturbing_granularity(self):
        with pytest.raises(ValueError):
            permute_regions(loop_trace(2), region_bits=16)

    def test_module_permutation_preserves_counters(self):
        trace = two_region_trace()
        permuted = permute_regions(trace)
        assert permuted != trace  # the transform actually moved something
        assert run_counters(trace) == run_counters(permuted)


class TestConcatenationIsContextSwitch:
    def test_concat_equals_snapshot_resume(self):
        first = loop_trace(iterations=80, start=BASE)
        second = loop_trace(iterations=50, start=BASE + 4 * RELABEL_GRANULE)

        whole = Simulator(config=ZEC12_CONFIG_2).run(first + second)

        front = Simulator(config=ZEC12_CONFIG_2)
        for record in first:
            front.step(record)
        state = front.state_dict()

        resumed = Simulator(config=ZEC12_CONFIG_2)
        resumed.load_state_dict(state)
        for record in second:
            resumed.step(record)
        result = resumed.finish()

        assert result.counters.state_dict() == whole.counters.state_dict()


class TestSampledAgreesWithFull:
    def test_sampled_cpi_within_confidence_interval(self):
        trace = loop_trace(iterations=3000)
        full = Simulator(config=ZEC12_CONFIG_2).run(trace)
        full_cpi = full.counters.cycles / full.counters.instructions

        plan = SamplingPlan(interval=500, period=2500, warmup=500, seed=5)
        sampled = run_sampled(trace, config=ZEC12_CONFIG_2, plan=plan)

        # The CI covers sampling error; the cold-start transient (absent
        # from warmed measured intervals) adds a small deterministic bias,
        # so allow it half a percent on top.  The 2 % at-scale accuracy
        # claim is pinned separately by benchmarks/bench_sampling.py.
        assert abs(sampled.cpi - full_cpi) <= (
            sampled.cpi_ci + 0.005 * full_cpi
        )
