"""Documentation integrity, wired into the fast suite.

Runs the checks of ``scripts/check_docs.py`` against the repository:
every intra-repo markdown link resolves, every ``src/repro`` package is
mentioned in ``docs/ARCHITECTURE.md``, registered headings exist, and
the hot-path packages keep full public docstring coverage.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs  # noqa: E402  (path set up above)


def test_no_broken_intra_repo_links():
    assert check_docs.check_links(REPO_ROOT) == []


def test_architecture_doc_covers_every_package():
    assert check_docs.check_architecture_coverage(REPO_ROOT) == []


def test_package_discovery_sees_known_packages():
    packages = check_docs.repro_packages(REPO_ROOT)
    for expected in ("btb", "core", "engine", "experiments", "preload",
                     "trace", "workloads", "metrics", "caches", "isa"):
        assert expected in packages


def test_required_headings_present():
    assert check_docs.check_required_headings(REPO_ROOT) == []


def test_required_headings_cover_observability_docs():
    # The telemetry docs are load-bearing (cross-referenced from the CLI
    # and CI); their sections must stay registered.
    assert ("## Observability"
            in check_docs.REQUIRED_HEADINGS["docs/ARCHITECTURE.md"])
    assert ("## Tracing, timelines, and profiles"
            in check_docs.REQUIRED_HEADINGS["docs/EXPERIMENTS.md"])


def test_performance_doc_is_registered():
    # docs/PERFORMANCE.md is load-bearing: the README, ARCHITECTURE.md,
    # and the bench modules all point readers at its sections.
    headings = check_docs.REQUIRED_HEADINGS["docs/PERFORMANCE.md"]
    assert "## The fast/slow path contract" in headings
    assert "## Reading the BENCH files" in headings
    assert ("## Batched engine core"
            in check_docs.REQUIRED_HEADINGS["docs/ARCHITECTURE.md"])


def test_docstring_coverage_clean():
    assert check_docs.check_docstring_coverage(REPO_ROOT) == []


def test_docstring_coverage_floor_packages():
    # The engine and BTB packages are the documented hot path; the
    # coverage floor must keep including them.
    assert "engine" in check_docs.DOCSTRING_PACKAGES
    assert "btb" in check_docs.DOCSTRING_PACKAGES


def test_docstring_coverage_reports_missing(tmp_path):
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "bare.py").write_text(
        "def visible():\n    pass\n\n"
        "class Thing:\n"
        '    """doc."""\n'
        "    def method(self):\n        pass\n"
        "    def _private(self):\n        pass\n"
    )
    problems = check_docs.check_docstring_coverage(tmp_path)
    assert any("bare.py: missing module docstring" in p for p in problems)
    assert any("missing docstring on 'visible'" in p for p in problems)
    assert any("missing docstring on 'Thing.method'" in p for p in problems)
    assert not any("_private" in p for p in problems)
    assert any("src/repro/btb: package does not exist" in p
               for p in problems)


def test_required_headings_reports_missing(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "ARCHITECTURE.md").write_text("# nothing\n")
    problems = check_docs.check_required_headings(tmp_path)
    assert any("missing heading '## Observability'" in p for p in problems)
    assert any("EXPERIMENTS.md does not exist" in p for p in problems)


def test_link_extraction_skips_code_fences():
    text = "a [ok](target.md)\n```\n[no](missing.md)\n```\n"
    assert check_docs.extract_links(text) == ["target.md"]


def test_checker_cli_exit_status():
    assert check_docs.main([str(REPO_ROOT)]) == 0
