"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _suffixed, build_parser, main
from repro.telemetry import validate_jsonl


class TestParser:
    def test_workloads_command(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "TPF"])
        assert args.configs == ["1", "2"]
        assert args.scale == 0.35

    def test_simulate_custom_configs(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--configs", "1", "3"]
        )
        assert args.configs == ["1", "3"]

    def test_figure_range(self):
        args = build_parser().parse_args(["figure", "5"])
        assert args.number == 5

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_telemetry_flags(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--trace", "ev.jsonl",
             "--chrome-trace", "trace.json", "--sample", "tl.csv",
             "--sample-interval", "256", "--profile"]
        )
        assert args.trace == "ev.jsonl"
        assert args.chrome_trace == "trace.json"
        assert args.sample == "tl.csv"
        assert args.sample_interval == 256
        assert args.profile == 10  # bare --profile defaults to top 10

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline", "TPF"])
        assert args.command == "timeline"
        assert args.config == "2" and args.interval == 1024

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "TPF"])
        assert args.command == "profile" and args.top == 10

    def test_suffixed_paths(self):
        assert _suffixed("out.jsonl", "2", True) == "out.cfg2.jsonl"
        assert _suffixed("out.jsonl", "2", False) == "out.jsonl"


class TestCommands:
    def test_workloads_lists_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "DayTrader DBServ" in out
        assert "34,819" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 5" in out

    def test_simulate_runs_tiny(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out

    def test_simulate_compares_configs(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "% CPI" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "NOPE"])


class TestTelemetryCommands:
    def test_simulate_exports_all_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        chrome = tmp_path / "trace.json"
        sample = tmp_path / "timeline.csv"
        assert main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--trace", str(trace), "--chrome-trace", str(chrome),
                     "--sample", str(sample), "--sample-interval", "256",
                     "--profile", "3"]) == 0
        assert validate_jsonl(trace.read_text().splitlines()) == []
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        header, *rows = sample.read_text().splitlines()
        assert header.startswith("cycle,") and rows
        out = capsys.readouterr().out
        assert "penalty profile" in out

    def test_simulate_multi_config_suffixes_exports(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1", "2", "--trace", str(trace)]) == 0
        assert (tmp_path / "events.cfg1.jsonl").exists()
        assert (tmp_path / "events.cfg2.jsonl").exists()

    def test_timeline_renders(self, tmp_path, capsys):
        csv = tmp_path / "timeline.csv"
        assert main(["timeline", "TPF", "--scale", "0.02",
                     "--interval", "256", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "instructions, CPI" in out
        assert csv.exists()

    def test_profile_renders_top_k(self, capsys):
        assert main(["profile", "TPF", "--scale", "0.02", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "penalty profile (top 5)" in out
