"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_workloads_command(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "TPF"])
        assert args.configs == ["1", "2"]
        assert args.scale == 0.35

    def test_simulate_custom_configs(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--configs", "1", "3"]
        )
        assert args.configs == ["1", "3"]

    def test_figure_range(self):
        args = build_parser().parse_args(["figure", "5"])
        assert args.number == 5

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads_lists_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "DayTrader DBServ" in out
        assert "34,819" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 5" in out

    def test_simulate_runs_tiny(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out

    def test_simulate_compares_configs(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "% CPI" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "NOPE"])
