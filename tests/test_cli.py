"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _suffixed, build_parser, main
from repro.core.config import ZEC12_CONFIG_2
from repro.telemetry import validate_jsonl


class TestParser:
    def test_workloads_command(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "TPF"])
        assert args.configs == ["1", "2"]
        assert args.scale == 0.35

    def test_simulate_custom_configs(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--configs", "1", "3"]
        )
        assert args.configs == ["1", "3"]

    def test_figure_range(self):
        args = build_parser().parse_args(["figure", "5"])
        assert args.number == 5

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_telemetry_flags(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--trace", "ev.jsonl",
             "--chrome-trace", "trace.json", "--sample", "tl.csv",
             "--sample-interval", "256", "--profile"]
        )
        assert args.trace == "ev.jsonl"
        assert args.chrome_trace == "trace.json"
        assert args.sample == "tl.csv"
        assert args.sample_interval == 256
        assert args.profile == 10  # bare --profile defaults to top 10

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline", "TPF"])
        assert args.command == "timeline"
        assert args.config == "2" and args.interval == 1024

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "TPF"])
        assert args.command == "profile" and args.top == 10

    def test_suffixed_paths(self):
        assert _suffixed("out.jsonl", "2", True) == "out.cfg2.jsonl"
        assert _suffixed("out.jsonl", "2", False) == "out.jsonl"


class TestCommands:
    def test_workloads_lists_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "DayTrader DBServ" in out
        assert "34,819" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 5" in out

    def test_simulate_runs_tiny(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out

    def test_simulate_compares_configs(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "% CPI" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "NOPE"])


class TestTelemetryCommands:
    def test_simulate_exports_all_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        chrome = tmp_path / "trace.json"
        sample = tmp_path / "timeline.csv"
        assert main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--trace", str(trace), "--chrome-trace", str(chrome),
                     "--sample", str(sample), "--sample-interval", "256",
                     "--profile", "3"]) == 0
        assert validate_jsonl(trace.read_text().splitlines()) == []
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        header, *rows = sample.read_text().splitlines()
        assert header.startswith("cycle,") and rows
        out = capsys.readouterr().out
        assert "penalty profile" in out

    def test_simulate_multi_config_suffixes_exports(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "1", "2", "--trace", str(trace)]) == 0
        assert (tmp_path / "events.cfg1.jsonl").exists()
        assert (tmp_path / "events.cfg2.jsonl").exists()

    def test_timeline_renders(self, tmp_path, capsys):
        csv = tmp_path / "timeline.csv"
        assert main(["timeline", "TPF", "--scale", "0.02",
                     "--interval", "256", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "instructions, CPI" in out
        assert csv.exists()

    def test_profile_renders_top_k(self, capsys):
        assert main(["profile", "TPF", "--scale", "0.02", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "penalty profile (top 5)" in out


class TestParallelSimulate:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--parallel-intervals", "4",
             "--backend", "serial"]
        )
        assert args.parallel_intervals == 4
        assert args.backend == "serial"
        # Off by default: serial execution stays the default path.
        assert build_parser().parse_args(
            ["simulate", "TPF"]).parallel_intervals is None

    def test_exact_parallel_matches_serial_output(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--parallel-intervals", "3", "--backend", "serial"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["simulate", "TPF", "--scale", "0.02",
                     "--configs", "2"]) == 0
        serial_out = capsys.readouterr().out
        # Exact mode is bit-identical: the CPI line matches the serial run.
        assert "checkpoint-parallel" in parallel_out
        serial_cpi = next(line for line in serial_out.splitlines()
                          if "CPI" in line)
        assert serial_cpi in parallel_out

    def test_sampled_parallel_reports_ci(self, capsys):
        assert main(["simulate", "TPF", "--scale", "0.1", "--configs", "2",
                     "--sampled", "--interval", "400", "--period", "8000",
                     "--warmup", "400", "--max-ci", "1.0",
                     "--parallel-intervals", "2", "--backend", "serial"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint-parallel" in out and "sampled" in out

    def test_audited_parallel_is_refused(self, capsys):
        code = main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--audit", "--parallel-intervals", "2"])
        assert code == 2
        assert "audit" in capsys.readouterr().err


class TestRefusalExitCode:
    def test_sampled_refusal_exits_nonzero(self, capsys):
        # An impossibly tight CI bound forces ConfidenceBoundExceeded; the
        # CLI must refuse with exit code 1 and say so on stderr, never
        # print a number that looks more certain than it is.
        code = main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--sampled", "--interval", "400", "--period", "8000",
                     "--warmup", "400", "--max-ci", "1e-12"])
        assert code == 1
        captured = capsys.readouterr()
        assert "CI measure" in captured.err
        assert "refusing" in captured.err or "exceeds" in captured.err

    def test_sampled_within_bound_exits_zero(self, capsys):
        code = main(["simulate", "TPF", "--scale", "0.02", "--configs", "2",
                     "--sampled", "--interval", "400", "--period", "8000",
                     "--warmup", "400", "--max-ci", "0.5"])
        assert code == 0
        assert "CPI" in capsys.readouterr().out


class TestVerifyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.command == "verify"
        assert args.golden == "tests/golden/workloads.json"
        assert args.scale == 0.01 and args.golden_scale == 0.02
        assert not args.update_golden

    def test_mutation_drill_gate_alone(self, capsys):
        code = main(["verify", "--skip-differential", "--skip-golden",
                     "--skip-parallel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mutation drill: caught" in out
        assert "divergence at record" in out
        assert "verify: all gates passed" in out

    def test_golden_gate_fails_on_drift(self, tmp_path, capsys, monkeypatch):
        # A baseline whose recorded CPI cannot match forces the gate red.
        from repro.oracle import golden

        real = golden.load_baseline(golden.GOLDEN_PATH)
        name = "TPF airline reservations"
        doctored = json.loads(json.dumps(real))
        doctored["workloads"][name]["cpi"] *= 2
        path = tmp_path / "gold.json"
        golden.write_baseline(path, doctored)

        def fake_measure(scale, config=None, jobs=None, workloads=None,
                         engine_mode="object"):
            return {name: real["workloads"][name]}

        monkeypatch.setattr(golden, "measure_workloads", fake_measure)
        code = main(["verify", "--skip-differential", "--skip-mutation-drill",
                     "--skip-parallel",
                     "--golden", str(path), "--workloads", "TPF"])
        assert code == 1
        err = capsys.readouterr().err
        assert "golden[object]:" in err and "cpi" in err
        assert "verify: FAILED" in err

    def test_golden_gate_passes_when_measurement_matches(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.oracle import golden

        real = golden.load_baseline(golden.GOLDEN_PATH)
        name = "TPF airline reservations"

        def fake_measure(scale, config=None, jobs=None, workloads=None,
                         engine_mode="object"):
            return {name: real["workloads"][name]}

        monkeypatch.setattr(golden, "measure_workloads", fake_measure)
        code = main(["verify", "--skip-differential", "--skip-mutation-drill",
                     "--skip-parallel",
                     "--golden", str(golden.GOLDEN_PATH),
                     "--workloads", "TPF"])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_update_golden_writes_selected_file(self, tmp_path, monkeypatch):
        from repro.oracle import golden

        def fake_build(scale, config=None, jobs=None):
            return {"schema": golden.GOLDEN_SCHEMA, "config": "x",
                    "scale": scale, "tolerances": {"relative": 1e-9},
                    "workloads": {"W": {"cpi": 1.0}}}

        monkeypatch.setattr(golden, "build_baseline", fake_build)
        path = tmp_path / "gold.json"
        assert main(["verify", "--update-golden", "--golden", str(path),
                     "--golden-scale", "0.03"]) == 0
        assert golden.load_baseline(path)["scale"] == 0.03


@pytest.mark.slow
class TestVerifyEndToEnd:
    def test_full_verify_passes_on_main(self, capsys):
        # The real gate, cold caches (the autouse fixture isolates them):
        # mutation drill, three lockstep workload/config pairs, and the
        # 13-workload golden baseline.
        assert main(["verify", "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "mutation drill: caught" in out
        assert out.count("differential: no divergence") == 3
        # The golden gate re-measures with both engines by default, making
        # it a bit-identity check of batched against object.
        assert ("golden baseline[object]: 13 workload(s) within tolerance"
                in out)
        assert ("golden baseline[batched]: 13 workload(s) within tolerance"
                in out)
        # The parallel gate demands bit-identity between serial and the
        # stitched checkpoint-parallel run on every workload.
        assert ("parallel gate: 13 workload(s) bit-identical serial vs "
                "4 checkpoint-parallel slices" in out)


class TestPredictorCli:
    def test_simulate_predictor_default_is_paper(self):
        assert build_parser().parse_args(
            ["simulate", "TPF"]).predictor == "paper"

    def test_simulate_predictor_flag(self):
        args = build_parser().parse_args(
            ["simulate", "TPF", "--predictor", "tage"])
        assert args.predictor == "tage"

    def test_verify_predictor_flags(self):
        args = build_parser().parse_args(["verify"])
        assert args.predictor is None
        assert args.predictor_golden == "tests/golden/predictors.json"
        args = build_parser().parse_args(
            ["verify", "--predictor", "tage", "ldbp"])
        assert args.predictor == ["tage", "ldbp"]

    def test_workloads_lists_the_adversarial_family(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "adversarial/btb-capacity" in out
        assert "adversarial/tracker-thrash" in out

    def test_simulate_zoo_predictor_runs(self, capsys):
        assert main(["simulate", "target-aliasing", "--predictor", "tage",
                     "--scale", "0.001", "--configs", "2"]) == 0
        out = capsys.readouterr().out
        assert "predictor: tage" in out
        assert "tage / 2. BTB2 enabled" in out
        assert "CPI" in out

    def test_simulate_zoo_compares_configs(self, capsys):
        assert main(["simulate", "target-aliasing", "--predictor", "ldbp",
                     "--scale", "0.001", "--configs", "1", "2"]) == 0
        assert "% CPI" in capsys.readouterr().out

    def test_simulate_zoo_refuses_sampling(self, capsys):
        code = main(["simulate", "TPF", "--predictor", "tage", "--sampled",
                     "--scale", "0.02"])
        assert code == 2
        assert "paper stack only" in capsys.readouterr().err

    def test_simulate_zoo_refuses_parallel_intervals(self, capsys):
        code = main(["simulate", "TPF", "--predictor", "bullseye",
                     "--parallel-intervals", "2", "--scale", "0.02"])
        assert code == 2
        assert "paper stack only" in capsys.readouterr().err

    def test_simulate_zoo_refuses_alternate_engines(self, capsys):
        code = main(["simulate", "TPF", "--predictor", "tage",
                     "--engine", "batched", "--scale", "0.02"])
        assert code == 2
        assert "single engine" in capsys.readouterr().err

    def test_simulate_unknown_predictor_raises(self):
        with pytest.raises(ValueError, match="registered"):
            main(["simulate", "TPF", "--predictor", "nope",
                  "--scale", "0.02"])

    def test_verify_conformance_leg_alone(self, capsys):
        code = main(["verify", "--skip-differential", "--skip-golden",
                     "--skip-mutation-drill", "--skip-parallel",
                     "--predictor", "ldbp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "conformance[ldbp]: 5 checks passed" in out
        assert "verify: all gates passed" in out

    def test_verify_update_predictor_golden(self, tmp_path, monkeypatch):
        from repro.oracle.golden import GOLDEN_SCHEMA
        from repro.predictors import golden

        def fake_build(scale, config=ZEC12_CONFIG_2, jobs=None):
            return {"schema": GOLDEN_SCHEMA, "config": config.name,
                    "scale": scale, "tolerances": {"relative": 1e-9},
                    "predictors": {"paper": {"W": {"cpi": 1.0}}}}

        monkeypatch.setattr(golden, "build_predictor_baseline", fake_build)
        path = tmp_path / "predictors.json"
        assert main(["verify", "--predictor", "all", "--update-golden",
                     "--predictor-golden", str(path),
                     "--golden-scale", "0.04"]) == 0
        assert golden.load_baseline(path)["scale"] == 0.04


class TestAblationCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["ablation"])
        assert args.command == "ablation"
        assert args.scale == 0.02
        assert args.workloads is None
        assert args.predictors is None
        assert args.json is None

    def test_small_grid_renders_and_exports(self, tmp_path, capsys):
        payload_path = tmp_path / "ablation.json"
        assert main(["ablation", "--workloads", "adversarial/target-aliasing",
                     "--predictors", "paper", "tage", "--scale", "0.001",
                     "--json", str(payload_path)]) == 0
        out = capsys.readouterr().out
        assert "| workload | paper | tage |" in out
        assert "geomean CPI" in out
        assert "wrote ablation grid (2 cells)" in out
        payload = json.loads(payload_path.read_text())
        assert payload["schema"] == 1
        assert payload["predictors"] == ["paper", "tage"]
        assert len(payload["cells"]) == 2


class TestServiceCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8753
        assert args.backend == "thread"
        assert args.jobs == 4
        assert args.spool is None
        assert args.queue_records == 65536
        assert args.chunk_records == 4096
        assert args.idle_timeout == 300.0
        assert args.max_sessions == 4096

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "warp"])

    def test_session_parser_ingest_flags(self):
        args = build_parser().parse_args(
            ["session", "ingest", "abc123", "--workload", "TPF",
             "--scale", "0.02", "--one-shot", "--ndjson", "--wait"])
        assert args.command == "session"
        assert args.action == "ingest"
        assert args.id == "abc123"
        assert args.workload == "TPF"
        assert args.one_shot and args.ndjson and args.wait

    def test_session_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session", "explode"])

    def test_session_status_requires_an_id(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["session", "status"])
        assert excinfo.value.code == 2
        assert "needs a session id" in capsys.readouterr().err

    def test_session_ingest_requires_a_source(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["session", "ingest", "abc123"])
        assert excinfo.value.code == 2
        assert "--workload NAME or --trace-file" in capsys.readouterr().err

    def test_session_without_a_daemon_exits_2(self, capsys):
        # An ephemeral port nothing listens on: bind, learn it, release.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["session", "list", "--port", str(port)]) == 2
        assert "no daemon at" in capsys.readouterr().err
