"""Setuptools shim.

The offline environment ships setuptools 65.5 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` through pyproject.toml
alone) fail at ``bdist_wheel``.  This shim lets the legacy editable path
(``pip install -e . --no-use-pep517 --no-build-isolation``) work; all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
